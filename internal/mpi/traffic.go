package mpi

import "sync"

// Message is one logical point-to-point transfer recorded in the ledger,
// identified by world ranks.
type Message struct {
	Src, Dst int
	Bytes    int
}

// Op is one communication operation (a collective or a Send) with its
// constituent messages. For tree-shaped collectives (Reduce, Bcast) the
// messages follow a binomial tree, which is how real MPI implementations
// route them on a torus.
type Op struct {
	Name     string
	Comm     commID
	CommSize int
	Msgs     []Message
	// Label tags the op with the caller's phase (set via Comm.SetTrafficLabel
	// on the communicator the op ran on).
	Label string
}

// Traffic is the world-wide ledger of communication operations. The
// perfmodel package replays it against a modeled interconnect to produce
// the paper's communication-time comparisons (naive vs relay mesh).
// Labels are keyed by communicator, so concurrent collective streams (e.g.
// the async PM solve on a duplicated comm overlapping the PP ghost exchange
// on the world comm) never mislabel each other's ops.
type Traffic struct {
	mu     sync.Mutex
	ops    []Op
	labels map[commID]string
}

func (t *Traffic) record(op Op) {
	if t == nil {
		return
	}
	t.mu.Lock()
	op.Label = t.labels[op.Comm]
	t.ops = append(t.ops, op)
	t.mu.Unlock()
}

// recordTree records a binomial-tree collective rooted at root (comm rank).
// toRoot selects the reduce direction (leaves → root); otherwise broadcast.
func (t *Traffic) recordTree(c *Comm, root, bytes int, name string, toRoot bool) {
	if t == nil {
		return
	}
	p := c.size
	var msgs []Message
	for k := 1; k < p; k <<= 1 {
		for v := k; v < p; v += 2 * k {
			// Virtual ranks v and v−k pair up in this round.
			a := c.members[(v+root)%p]
			b := c.members[(v-k+root)%p]
			if toRoot {
				msgs = append(msgs, Message{Src: a, Dst: b, Bytes: bytes})
			} else {
				msgs = append(msgs, Message{Src: b, Dst: a, Bytes: bytes})
			}
		}
	}
	t.record(Op{Name: name, Comm: c.id, CommSize: p, Msgs: msgs})
}

// setLabel installs (or, with the empty string, clears) the label applied to
// ops subsequently recorded on the given communicator.
func (t *Traffic) setLabel(id commID, label string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if label == "" {
		delete(t.labels, id)
		return
	}
	if t.labels == nil {
		t.labels = make(map[commID]string)
	}
	t.labels[id] = label
}

// SetLabel tags ops subsequently recorded on the *world* communicator with a
// phase label (e.g. "mesh→slab"). Ops on split or duplicated communicators
// are unaffected; label those via Comm.SetTrafficLabel. Call from a single
// rank around a communication phase.
func (t *Traffic) SetLabel(label string) {
	t.setLabel(commID{}, label)
}

// Reset clears the ledger and all labels.
func (t *Traffic) Reset() {
	t.mu.Lock()
	t.ops = nil
	t.labels = nil
	t.mu.Unlock()
}

// Ops returns a copy of the recorded operations.
func (t *Traffic) Ops() []Op {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Op(nil), t.ops...)
}

// TotalBytes sums the payload bytes over all recorded messages.
func (t *Traffic) TotalBytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, op := range t.ops {
		for _, m := range op.Msgs {
			n += int64(m.Bytes)
		}
	}
	return n
}

// TotalMessages counts all recorded messages.
func (t *Traffic) TotalMessages() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, op := range t.ops {
		n += int64(len(op.Msgs))
	}
	return n
}

// OpTotals summarizes a group of recorded operations.
type OpTotals struct {
	Ops   int64 // operations in the group
	Msgs  int64 // constituent point-to-point messages
	Bytes int64 // payload bytes
}

// TotalsByOp groups the ledger by operation name (Alltoallv, Reduce, …).
func (t *Traffic) TotalsByOp() map[string]OpTotals {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]OpTotals)
	for _, op := range t.ops {
		tot := out[op.Name]
		tot.Ops++
		tot.Msgs += int64(len(op.Msgs))
		for _, m := range op.Msgs {
			tot.Bytes += int64(m.Bytes)
		}
		out[op.Name] = tot
	}
	return out
}

// TotalsByLabel groups the ledger by the phase label active when each op was
// recorded (SetLabel); ops recorded with no label land under "".
func (t *Traffic) TotalsByLabel() map[string]OpTotals {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]OpTotals)
	for _, op := range t.ops {
		tot := out[op.Label]
		tot.Ops++
		tot.Msgs += int64(len(op.Msgs))
		for _, m := range op.Msgs {
			tot.Bytes += int64(m.Bytes)
		}
		out[op.Label] = tot
	}
	return out
}
