package mpi

import (
	"errors"
	"fmt"
)

// ErrAborted is the panic value raised by collectives and Recv when the world
// has been aborted (because some rank panicked or was killed at a fault
// point). It replaces the bare string panics the package used to raise, so
// drivers can distinguish "a peer died under me" from a genuine bug:
//
//	defer func() {
//		if p := recover(); p != nil && !mpi.IsAborted(p) {
//			panic(p) // real bug, re-raise
//		}
//	}()
//
// Run converts rank panics into its returned error with %w wrapping, so
// IsAborted also recognizes the error Run returns after an abort or kill.
var ErrAborted = errors.New("mpi: operation on aborted world")

// RankKilledError is the panic value raised by Comm.FaultPoint when the
// installed KillHook elects to kill the calling rank. It models a node
// failure at a named point in the step cycle for crash-restart tests.
type RankKilledError struct {
	Rank  int    // world rank that was killed
	Point string // fault-point name at which it died
}

func (e *RankKilledError) Error() string {
	return fmt.Sprintf("mpi: rank %d killed at fault point %q", e.Rank, e.Point)
}

// IsAborted reports whether v — a recovered panic value or an error returned
// by Run — stems from an aborted world or an injected rank kill, i.e. a
// failure a driver can degrade on (resume from a checkpoint) rather than a
// programming error it must surface.
func IsAborted(v any) bool {
	err, ok := v.(error)
	if !ok || err == nil {
		return false
	}
	if errors.Is(err, ErrAborted) {
		return true
	}
	var rk *RankKilledError
	return errors.As(err, &rk)
}

// KillHook decides, at every named fault point a rank passes, whether that
// rank should die there. It is called concurrently from all rank goroutines
// and must be safe for concurrent use; returning true makes the calling rank
// panic with *RankKilledError, which aborts the world (peers observe
// ErrAborted) and surfaces through Run's returned error.
type KillHook func(rank int, point string) bool

// FaultPoint is a named crash-injection site: if a KillHook was installed via
// RunWithKillHook and elects to kill this rank here, the rank panics with
// *RankKilledError. With no hook installed it is a no-op costing one nil
// check, so production paths can carry fault points permanently. The sim
// package exposes "sim/step" and "sim/kick"; the checkpoint package exposes
// "ckpt/shard-write" and "ckpt/manifest-write".
func (c *Comm) FaultPoint(point string) {
	if h := c.world.kill; h != nil && h(c.WorldRank(), point) {
		panic(&RankKilledError{Rank: c.WorldRank(), Point: point})
	}
}
