package mpi

import (
	"testing"
)

// TestTrafficSendAccounting drives a single labeled Send and checks every
// view of the ledger agrees on what was recorded.
func TestTrafficSendAccounting(t *testing.T) {
	var tr *Traffic
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			tr = c.Traffic()
			tr.SetLabel("ghost-exchange")
		}
		c.Barrier()
		if c.Rank() == 0 {
			Send(c, 1, 0, []float64{1, 2, 3})
		} else {
			Recv[float64](c, 0, 0)
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	ops := tr.Ops()
	var sends []Op
	for _, op := range ops {
		if op.Name == "Send" {
			sends = append(sends, op)
		}
	}
	if len(sends) != 1 {
		t.Fatalf("want 1 Send op, got %d (ops: %+v)", len(sends), ops)
	}
	s := sends[0]
	if s.Label != "ghost-exchange" {
		t.Errorf("Send label = %q, want ghost-exchange", s.Label)
	}
	if len(s.Msgs) != 1 || s.Msgs[0].Bytes != 3*8 {
		t.Errorf("Send messages = %+v, want one 24-byte message", s.Msgs)
	}
	if s.Msgs[0].Src != 0 || s.Msgs[0].Dst != 1 {
		t.Errorf("Send route = %d→%d, want 0→1", s.Msgs[0].Src, s.Msgs[0].Dst)
	}
}

// TestTrafficTotalsGrouping checks TotalsByOp/TotalsByLabel and the global
// totals over a mixed sequence of collectives, then Reset.
func TestTrafficTotalsGrouping(t *testing.T) {
	var tr *Traffic
	err := Run(4, func(c *Comm) {
		if c.Rank() == 0 {
			tr = c.Traffic()
			tr.SetLabel("pm")
		}
		c.Barrier()
		Reduce(c, 0, []float64{float64(c.Rank())}, Sum[float64])
		if c.Rank() == 0 {
			tr.SetLabel("pp")
		}
		c.Barrier()
		Allgather(c, []int64{int64(c.Rank())})
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}

	byOp := tr.TotalsByOp()
	if byOp["Reduce"].Ops != 1 {
		t.Errorf("Reduce ops = %d, want 1", byOp["Reduce"].Ops)
	}
	// Binomial reduce over 4 ranks routes 3 messages of one float64 each.
	if byOp["Reduce"].Msgs != 3 || byOp["Reduce"].Bytes != 3*8 {
		t.Errorf("Reduce totals = %+v, want 3 msgs / 24 bytes", byOp["Reduce"])
	}

	byLabel := tr.TotalsByLabel()
	if byLabel["pm"].Ops == 0 {
		t.Error("no ops recorded under label pm")
	}
	if byLabel["pp"].Ops == 0 {
		t.Error("no ops recorded under label pp")
	}

	// Cross-check the grouped views against the global totals.
	var opMsgs, opBytes, lblMsgs, lblBytes int64
	for _, v := range byOp {
		opMsgs += v.Msgs
		opBytes += v.Bytes
	}
	for _, v := range byLabel {
		lblMsgs += v.Msgs
		lblBytes += v.Bytes
	}
	if opMsgs != tr.TotalMessages() || lblMsgs != tr.TotalMessages() {
		t.Errorf("message totals disagree: byOp=%d byLabel=%d global=%d",
			opMsgs, lblMsgs, tr.TotalMessages())
	}
	if opBytes != tr.TotalBytes() || lblBytes != tr.TotalBytes() {
		t.Errorf("byte totals disagree: byOp=%d byLabel=%d global=%d",
			opBytes, lblBytes, tr.TotalBytes())
	}

	tr.Reset()
	if tr.TotalMessages() != 0 || tr.TotalBytes() != 0 || len(tr.Ops()) != 0 {
		t.Error("Reset left ops in the ledger")
	}
	if got := tr.TotalsByLabel(); len(got) != 0 {
		t.Errorf("Reset left label groups: %v", got)
	}
}

// TestTrafficUnlabeledOps checks ops recorded before any SetLabel land under
// the empty label.
func TestTrafficUnlabeledOps(t *testing.T) {
	var tr *Traffic
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			tr = c.Traffic()
		}
		Bcast(c, 0, []int64{7})
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	byLabel := tr.TotalsByLabel()
	if byLabel[""].Ops == 0 {
		t.Errorf("unlabeled ops not grouped under \"\": %v", byLabel)
	}
}

// TestTrafficNilSafe checks a nil ledger ignores records (ranks without a
// world traffic pointer must not panic).
func TestTrafficNilSafe(t *testing.T) {
	var tr *Traffic
	tr.record(Op{Name: "Send"})
}
