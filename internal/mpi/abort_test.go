package mpi

import (
	"errors"
	"fmt"
	"testing"
)

func TestIsAborted(t *testing.T) {
	cases := []struct {
		name string
		v    any
		want bool
	}{
		{"ErrAborted itself", ErrAborted, true},
		{"wrapped ErrAborted", fmt.Errorf("rank 3: %w", ErrAborted), true},
		{"RankKilledError", &RankKilledError{Rank: 1, Point: "sim/kick"}, true},
		{"wrapped RankKilledError", fmt.Errorf("boom: %w", &RankKilledError{Rank: 2, Point: "p"}), true},
		{"unrelated error", errors.New("disk full"), false},
		{"non-error panic value", "some panic string", false},
		{"nil", nil, false},
	}
	for _, tc := range cases {
		if got := IsAborted(tc.v); got != tc.want {
			t.Errorf("%s: IsAborted = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestRankKilledErrorMessage(t *testing.T) {
	e := &RankKilledError{Rank: 5, Point: "ckpt/shard-write"}
	msg := e.Error()
	for _, want := range []string{"5", "ckpt/shard-write"} {
		if !contains(msg, want) {
			t.Errorf("error %q should mention %q", msg, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestKillHookAbortsWorld is the degradation contract end to end: a kill hook
// takes one rank down at a fault point, the surviving ranks' collectives
// unblock by panicking on the aborted world, and Run's returned error
// satisfies IsAborted so drivers can distinguish a crashed rank from a bug.
func TestKillHookAbortsWorld(t *testing.T) {
	hook := func(rank int, point string) bool {
		return rank == 1 && point == "mid/step"
	}
	err := RunWithKillHook(4, hook, func(c *Comm) {
		c.FaultPoint("before/step") // no rank dies here
		if c.Rank() == 1 {
			c.FaultPoint("mid/step") // rank 1 dies here
		}
		// Everyone else enters a collective that can never complete.
		Allgather(c, []int{c.Rank()})
	})
	if err == nil {
		t.Fatal("killed world returned nil error")
	}
	if !IsAborted(err) {
		t.Fatalf("IsAborted(%v) = false, want true", err)
	}
}

// TestNilHookIsPlainRun: FaultPoint is free when no hook is installed.
func TestNilHookIsPlainRun(t *testing.T) {
	err := Run(2, func(c *Comm) {
		for i := 0; i < 100; i++ {
			c.FaultPoint("anywhere")
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestKillHookSelectiveByPoint: the hook sees every fault point and can
// choose a precise instant; earlier points on the same rank pass through.
func TestKillHookSelectiveByPoint(t *testing.T) {
	var seen []string
	hook := func(rank int, point string) bool {
		if rank == 0 {
			seen = append(seen, point)
		}
		return rank == 0 && point == "c"
	}
	err := RunWithKillHook(1, hook, func(c *Comm) {
		c.FaultPoint("a")
		c.FaultPoint("b")
		c.FaultPoint("c")
		t.Error("rank survived past its kill point")
	})
	if !IsAborted(err) {
		t.Fatalf("want aborted error, got %v", err)
	}
	want := []string{"a", "b", "c"}
	if len(seen) != len(want) {
		t.Fatalf("hook saw %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("hook saw %v, want %v", seen, want)
		}
	}
}
