package ic

import (
	"math"
	"testing"

	"greem/internal/analysis"
	"greem/internal/cosmo"
	"greem/internal/mpi"
	"greem/internal/sim"
)

func TestFieldIsRealAndMeanZero(t *testing.T) {
	ps := PowerLaw{N: -1, Amp: 1e-4}
	f, err := GenerateField(32, 1, ps, 1)
	if err != nil {
		t.Fatal(err)
	}
	var mean, maxAbs float64
	for _, v := range f.Delta {
		mean += v
		if math.Abs(v) > maxAbs {
			maxAbs = math.Abs(v)
		}
	}
	mean /= float64(len(f.Delta))
	if maxAbs == 0 {
		t.Fatal("field is identically zero")
	}
	if math.Abs(mean) > 1e-12*maxAbs {
		t.Errorf("mean δ = %v (max %v)", mean, maxAbs)
	}
}

func TestFieldDeterministicBySeed(t *testing.T) {
	ps := PowerLaw{N: -2, Amp: 1e-4}
	f1, _ := GenerateField(16, 1, ps, 7)
	f2, _ := GenerateField(16, 1, ps, 7)
	f3, _ := GenerateField(16, 1, ps, 8)
	same, diff := true, false
	for i := range f1.Delta {
		if f1.Delta[i] != f2.Delta[i] {
			same = false
		}
		if f1.Delta[i] != f3.Delta[i] {
			diff = true
		}
	}
	if !same {
		t.Error("same seed produced different fields")
	}
	if !diff {
		t.Error("different seeds produced identical fields")
	}
}

func TestDisplacementDivergenceIsDelta(t *testing.T) {
	// δ = −∇·Ψ by construction; verify via central differences. A red
	// spectrum concentrates power at low k, where second-order differences
	// are accurate (the residual measures the difference stencil, not the
	// field construction).
	n := 32
	l := 2.0
	ps := PowerLaw{N: -3.5, Amp: 1e-4}
	f, err := GenerateField(n, l, ps, 3)
	if err != nil {
		t.Fatal(err)
	}
	h := l / float64(n)
	idx := func(i, j, k int) int {
		return ((i+n)%n*n+(j+n)%n)*n + (k+n)%n
	}
	var errSum, refSum float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				div := (f.PsiX[idx(i+1, j, k)]-f.PsiX[idx(i-1, j, k)])/(2*h) +
					(f.PsiY[idx(i, j+1, k)]-f.PsiY[idx(i, j-1, k)])/(2*h) +
					(f.PsiZ[idx(i, j, k+1)]-f.PsiZ[idx(i, j, k-1)])/(2*h)
				d := f.Delta[idx(i, j, k)]
				errSum += (div + d) * (div + d)
				refSum += d * d
			}
		}
	}
	// Central differences are 2nd order; most power sits at low k for a red
	// spectrum, so the mismatch is a few percent.
	rel := math.Sqrt(errSum / refSum)
	if rel > 0.2 {
		t.Errorf("∇·Ψ ≠ −δ: relative residual %v", rel)
	}
}

func TestGeneratedSpectrumMatchesInput(t *testing.T) {
	// Generate a field, displace a lattice, and measure the particle power
	// spectrum with the analysis package — it must recover the input shape
	// in the linear regime. This cross-validates ic and analysis at once.
	n := 64
	l := 1.0
	model := cosmo.EdS(1)
	ps := NeutralinoCutoff{N: 0.0, Amp: 4e-7, KCut: 2 * math.Pi / l * 12}
	parts, err := Generate(Config{
		NP: 64, NGrid: n, L: l, PS: ps, Seed: 4,
		Model: model, AInit: 0.02, TotalMass: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, len(parts))
	y := make([]float64, len(parts))
	z := make([]float64, len(parts))
	m := make([]float64, len(parts))
	for i, p := range parts {
		x[i], y[i], z[i], m[i] = p.X, p.Y, p.Z, p.M
	}
	ks, pk, counts, err := analysis.PowerSpectrum(x, y, z, m, n, l, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) < 6 {
		t.Fatalf("too few bins: %d", len(ks))
	}
	// Compare measured vs input in well-sampled low-k bins (high-k bins are
	// distorted by the lattice and assignment aliasing).
	for b := 0; b < len(ks)/2; b++ {
		if counts[b] < 20 {
			continue
		}
		want := ps.P(ks[b])
		if pk[b] < want/3 || pk[b] > want*3 {
			t.Errorf("bin k=%.1f: P=%.3e, input %.3e", ks[b], pk[b], want)
		}
	}
}

func TestZeldovichLinearGrowth(t *testing.T) {
	// The headline IC validation: a single-mode Zel'dovich perturbation in
	// an EdS universe must grow as D(a) ∝ a when evolved with the full
	// TreePM + comoving KDK machinery. Doubling the scale factor must double
	// the displacement amplitude.
	n := 32
	l := 1.0
	g := 1.0
	totalM := 1.0
	h0 := cosmo.HubbleForBox(g, totalM, l, 1.0)
	model := cosmo.EdS(h0)
	aInit := 0.02
	amp := 2e-4 * l

	field := SingleMode(n, l, amp, 1)
	parts, err := Displace(field, Config{
		NP: 32, NGrid: n, L: l, PS: nil, Model: model, AInit: aInit, TotalMass: totalM,
	})
	if err != nil {
		t.Fatal(err)
	}

	cfg := sim.Config{
		L: l, G: g, NMesh: 32, Theta: 0.4, Ni: 64, Eps2: 1e-10,
		Grid: [3]int{2, 1, 1}, DT: aInit / 16, Stepper: model, Time: aInit,
	}
	var finalParts []sim.Particle
	err = mpi.Run(2, func(c *mpi.Comm) {
		var mine []sim.Particle
		for i, p := range parts {
			if i%2 == c.Rank() {
				mine = append(mine, p)
			}
		}
		s, err := sim.New(c, cfg, mine)
		if err != nil {
			panic(err)
		}
		for s.Time() < 2*aInit-1e-12 {
			if err := s.Step(); err != nil {
				panic(err)
			}
		}
		all := s.GatherAll(0)
		if c.Rank() == 0 {
			finalParts = all
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	// Fit the displacement amplitude: dx(q) = A·sin(2π qx / L), with q
	// recovered from the particle ID (lattice order).
	k := 2 * math.Pi / l
	var num, den float64
	for _, p := range finalParts {
		id := p.ID
		qi := id / (32 * 32)
		qx := float64(qi) / 32 * l
		dx := p.X - qx
		for dx > l/2 {
			dx -= l
		}
		for dx < -l/2 {
			dx += l
		}
		s := math.Sin(k * qx)
		num += dx * s
		den += s * s
	}
	aFit := num / den
	growth := aFit / amp
	t.Logf("amplitude growth %v (want 2.0, Zel'dovich D ∝ a in EdS)", growth)
	if math.Abs(growth-2) > 0.06 {
		t.Errorf("linear growth = %v, want 2.0 ± 0.06", growth)
	}
}

func TestGenerateValidation(t *testing.T) {
	model := cosmo.EdS(1)
	if _, err := Generate(Config{NP: 3, NGrid: 16, L: 1, PS: PowerLaw{}, Model: model, AInit: 0.1, TotalMass: 1}); err == nil {
		t.Error("NP not dividing NGrid accepted")
	}
	if _, err := Generate(Config{NP: 4, NGrid: 16, L: 1, PS: PowerLaw{}, AInit: 0.1, TotalMass: 1}); err == nil {
		t.Error("missing model accepted")
	}
	if _, err := GenerateField(12, 1, PowerLaw{}, 1); err == nil {
		t.Error("non-power-of-two grid accepted")
	}
}

func TestNeutralinoCutoffShape(t *testing.T) {
	ps := NeutralinoCutoff{N: 1, Amp: 2, KCut: 10}
	if p := ps.P(10); math.Abs(p-2*10*math.Exp(-1)) > 1e-12 {
		t.Errorf("P(kcut) = %v", p)
	}
	// Strong suppression beyond the cutoff — the defining feature.
	if ps.P(50) > ps.P(10)*1e-9 {
		t.Errorf("cutoff too weak: P(5kcut)/P(kcut) = %v", ps.P(50)/ps.P(10))
	}
}

func TestPowerSpectrumGrowsAsDSquared(t *testing.T) {
	// Statistical counterpart of the single-mode Zel'dovich test: in the
	// linear regime the whole power spectrum grows as D(a)², so doubling the
	// scale factor in EdS quadruples P(k) in the well-resolved bins.
	if testing.Short() {
		t.Skip("multi-step simulation")
	}
	l := 1.0
	g := 1.0
	h0 := cosmo.HubbleForBox(g, 1.0, l, 1.0)
	model := cosmo.EdS(h0)
	a0 := 0.02
	ps := NeutralinoCutoff{N: 0, Amp: 3e-8, KCut: 2 * math.Pi / l * 6}
	parts, err := Generate(Config{
		NP: 32, NGrid: 32, L: l, PS: ps, Seed: 21,
		Model: model, AInit: a0, TotalMass: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	measure := func(all []sim.Particle) []float64 {
		x := make([]float64, len(all))
		y := make([]float64, len(all))
		z := make([]float64, len(all))
		m := make([]float64, len(all))
		for i, p := range all {
			x[i], y[i], z[i], m[i] = p.X, p.Y, p.Z, p.M
		}
		_, pk, _, err := analysis.PowerSpectrum(x, y, z, m, 32, l, 8)
		if err != nil {
			t.Fatal(err)
		}
		return pk
	}
	p0 := measure(parts)

	cfg := sim.Config{
		L: l, G: g, NMesh: 32, Theta: 0.4, Ni: 64, Eps2: 1e-9, FastKernel: true,
		Grid: [3]int{2, 1, 1}, DT: a0 / 8, Stepper: model, Time: a0,
	}
	var final []sim.Particle
	err = mpi.Run(2, func(c *mpi.Comm) {
		var mine []sim.Particle
		for i, p := range parts {
			if i%2 == c.Rank() {
				mine = append(mine, p)
			}
		}
		s, err := sim.New(c, cfg, mine)
		if err != nil {
			panic(err)
		}
		for s.Time() < 2*a0-1e-12 {
			if err := s.Step(); err != nil {
				panic(err)
			}
		}
		all := s.GatherAll(0)
		if c.Rank() == 0 {
			final = all
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	p1 := measure(final)

	// Compare the two largest-scale (best-sampled, most linear) bins; higher
	// bins sit near the lattice/assignment aliasing scale where the measured
	// growth is contaminated.
	for b := 0; b < 2; b++ {
		ratio := p1[b] / p0[b]
		if ratio < 2.8 || ratio > 5.6 {
			t.Errorf("bin %d: P grew %vx, want ≈ 4 (D² for a doubling)", b, ratio)
		}
	}
	t.Logf("P(k) growth ratios (want ≈4): %.2f %.2f %.2f", p1[0]/p0[0], p1[1]/p0[1], p1[2]/p0[2])
}

func TestAdd2LPTCrossedWavesAnalytic(t *testing.T) {
	// For δ = A(cos k₁x + cos k₁y), the 2LPT source is
	// S = A²·cos k₁x·cos k₁y, so ∇φ⁽²⁾ has the analytic form
	// ∂xφ⁽²⁾ = (A²/2k₁)·sin k₁x·cos k₁y (and symmetrically in y; zero in z).
	n := 32
	l := 1.0
	amp := 0.01
	k1 := 2 * math.Pi / l
	size := n * n * n
	f := &Field{N: n, L: l,
		Delta: make([]float64, size),
		PsiX:  make([]float64, size), PsiY: make([]float64, size), PsiZ: make([]float64, size),
	}
	h := l / float64(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				f.Delta[(i*n+j)*n+k] = amp * (math.Cos(k1*float64(i)*h) + math.Cos(k1*float64(j)*h))
			}
		}
	}
	if err := f.Add2LPT(); err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				idx := (i*n+j)*n + k
				x := float64(i) * h
				y := float64(j) * h
				wantX := amp * amp / (2 * k1) * math.Sin(k1*x) * math.Cos(k1*y)
				wantY := amp * amp / (2 * k1) * math.Cos(k1*x) * math.Sin(k1*y)
				worst = math.Max(worst, math.Abs(f.Psi2X[idx]-wantX))
				worst = math.Max(worst, math.Abs(f.Psi2Y[idx]-wantY))
				worst = math.Max(worst, math.Abs(f.Psi2Z[idx]))
			}
		}
	}
	scale := amp * amp / (2 * k1)
	t.Logf("worst 2LPT field error %.3e (scale %.3e)", worst, scale)
	if worst > 1e-10*scale+1e-15 {
		t.Errorf("2LPT field deviates from the analytic solution by %v", worst)
	}
}

func TestGenerate2LPTRuns(t *testing.T) {
	// End-to-end smoke: 2LPT displacements are a small correction to ZA at
	// low amplitude, and the generator stays valid (positions in the box,
	// identical particle count and IDs).
	model := cosmo.EdS(1)
	base := Config{
		NP: 16, NGrid: 16, L: 1, PS: PowerLaw{N: -1, Amp: 1e-6}, Seed: 9,
		Model: model, AInit: 0.02, TotalMass: 1,
	}
	za, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := base
	cfg2.SecondOrder = true
	lpt, err := Generate(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if len(za) != len(lpt) {
		t.Fatalf("counts differ")
	}
	mi := func(d float64) float64 {
		if d > 0.5 {
			d -= 1
		}
		if d < -0.5 {
			d += 1
		}
		return math.Abs(d)
	}
	var diff, disp float64
	for i := range za {
		dd := mi(za[i].X-lpt[i].X) + mi(za[i].Y-lpt[i].Y) + mi(za[i].Z-lpt[i].Z)
		diff = math.Max(diff, dd)
		qx := float64(i/(16*16)) / 16
		dx := za[i].X - qx
		if dx > 0.5 {
			dx -= 1
		}
		if dx < -0.5 {
			dx += 1
		}
		disp = math.Max(disp, math.Abs(dx))
		if lpt[i].X < 0 || lpt[i].X >= 1 {
			t.Fatalf("particle outside box")
		}
		if za[i].ID != lpt[i].ID {
			t.Fatalf("ID mismatch")
		}
	}
	if diff == 0 {
		t.Error("2LPT changed nothing")
	}
	if diff > disp {
		t.Errorf("second order (%v) should be smaller than first (%v) in the linear regime", diff, disp)
	}
}
