// Package ic generates cosmological initial conditions: a Gaussian random
// density field with a prescribed power spectrum — including the sharp
// small-scale cutoff produced by the free streaming of a 100 GeV neutralino
// (Green, Hofmann & Schwarz 2004), which the paper's trillion-particle run
// uses — converted to particle positions and velocities on a uniform lattice
// with the Zel'dovich approximation (the paper's choice) or, optionally,
// second-order Lagrangian perturbation theory (2LPT).
package ic

import (
	"fmt"
	"math"
	"math/rand"

	"greem/internal/cosmo"
	"greem/internal/fft"
	"greem/internal/sim"
)

// PowerSpectrum is the linear matter power spectrum at the initial epoch,
// P(k) with k in simulation units (2π/L per fundamental mode).
type PowerSpectrum interface {
	P(k float64) float64
}

// PowerLaw is P(k) = Amp·kⁿ.
type PowerLaw struct {
	N   float64
	Amp float64
}

// P implements PowerSpectrum.
func (p PowerLaw) P(k float64) float64 { return p.Amp * math.Pow(k, p.N) }

// NeutralinoCutoff is a power law damped by Gaussian free streaming,
// P(k) = Amp·kⁿ·exp(−(k/KCut)²) — the spectrum shape of the paper's §III-A
// initial condition, in which structure formation starts only at the cutoff
// scale (the smallest dark-matter structures).
type NeutralinoCutoff struct {
	N    float64
	Amp  float64
	KCut float64
}

// P implements PowerSpectrum.
func (p NeutralinoCutoff) P(k float64) float64 {
	x := k / p.KCut
	return p.Amp * math.Pow(k, p.N) * math.Exp(-x*x)
}

// Field is a realization of the linear density and displacement fields on an
// n³ grid.
type Field struct {
	N int
	L float64
	// Delta is the linear density contrast δ.
	Delta []float64
	// PsiX/Y/Z is the Zel'dovich displacement field, δ = −∇·Ψ.
	PsiX, PsiY, PsiZ []float64
	// Psi2X/Y/Z is ∇φ⁽²⁾, the raw second-order displacement kernel (nil
	// unless Add2LPT has run); the physical 2LPT term is D₂·∇φ⁽²⁾.
	Psi2X, Psi2Y, Psi2Z []float64
}

// GenerateField draws a Gaussian realization of ps on an n³ periodic grid
// (n a power of two) with the given seed. The white-noise field is filtered
// in k-space by √P, so the result is exactly Gaussian with Hermitian
// symmetry by construction; Nyquist planes are zeroed for the odd ik filter.
func GenerateField(n int, l float64, ps PowerSpectrum, seed int64) (*Field, error) {
	plan, err := fft.NewPlan3(n, n, n)
	if err != nil {
		return nil, err
	}
	if l <= 0 {
		return nil, fmt.Errorf("ic: box size must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	size := n * n * n
	white := make([]complex128, size)
	for i := range white {
		white[i] = complex(rng.NormFloat64(), 0)
	}
	plan.Forward(white)

	v := l * l * l
	dHat := make([]complex128, size)
	pxHat := make([]complex128, size)
	pyHat := make([]complex128, size)
	pzHat := make([]complex128, size)
	twoPiL := 2 * math.Pi / l
	for jx := 0; jx < n; jx++ {
		nx := fold(jx, n)
		for jy := 0; jy < n; jy++ {
			ny := fold(jy, n)
			base := (jx*n + jy) * n
			for jz := 0; jz < n; jz++ {
				nz := fold(jz, n)
				idx := base + jz
				if (nx == 0 && ny == 0 && nz == 0) || nx == -n/2 || ny == -n/2 || nz == -n/2 {
					continue
				}
				kx := twoPiL * float64(nx)
				ky := twoPiL * float64(ny)
				kz := twoPiL * float64(nz)
				k2 := kx*kx + ky*ky + kz*kz
				k := math.Sqrt(k2)
				pk := ps.P(k)
				if pk < 0 {
					return nil, fmt.Errorf("ic: negative power at k=%v", k)
				}
				amp := math.Sqrt(pk * float64(size) / v)
				d := white[idx] * complex(amp, 0)
				dHat[idx] = d
				// Ψ̂ = i k δ̂ / k²  (so that δ = −∇·Ψ).
				pxHat[idx] = complex(0, kx/k2) * d
				pyHat[idx] = complex(0, ky/k2) * d
				pzHat[idx] = complex(0, kz/k2) * d
			}
		}
	}
	plan.Inverse(dHat)
	plan.Inverse(pxHat)
	plan.Inverse(pyHat)
	plan.Inverse(pzHat)
	f := &Field{N: n, L: l,
		Delta: make([]float64, size),
		PsiX:  make([]float64, size),
		PsiY:  make([]float64, size),
		PsiZ:  make([]float64, size),
	}
	for i := 0; i < size; i++ {
		f.Delta[i] = real(dHat[i])
		f.PsiX[i] = real(pxHat[i])
		f.PsiY[i] = real(pyHat[i])
		f.PsiZ[i] = real(pzHat[i])
	}
	return f, nil
}

func fold(j, n int) int {
	if j > n/2 {
		return j - n
	}
	if j == n/2 {
		return -n / 2
	}
	return j
}

// Config parameterizes a Zel'dovich initial condition.
type Config struct {
	NP    int     // particles per dimension (lattice); must divide NGrid
	NGrid int     // displacement-field grid per dimension (power of two)
	L     float64 // box side
	PS    PowerSpectrum
	Seed  int64
	Model *cosmo.Model
	AInit float64 // starting scale factor; PS is the spectrum at AInit
	// TotalMass is the comoving mass in the box (sets particle masses).
	TotalMass float64
	// SecondOrder enables 2LPT displacements and velocities (D₂ = −3/7·D₁²,
	// f₂ = 2·f₁, exact for Ωm = 1 and standard to ~1% otherwise).
	SecondOrder bool
}

// Generate lays particles on an NP³ lattice, displaces them with the
// Zel'dovich approximation x = q + Ψ(q), and assigns growing-mode velocities
// u = a²·H(a)·f(a)·Ψ(q), with u the canonical momentum variable of package
// cosmo. The returned particles are in box coordinates with IDs in lattice
// order.
func Generate(cfg Config) ([]sim.Particle, error) {
	if cfg.NP < 1 || cfg.NGrid%cfg.NP != 0 {
		return nil, fmt.Errorf("ic: NP=%d must divide NGrid=%d", cfg.NP, cfg.NGrid)
	}
	if cfg.Model == nil || cfg.AInit <= 0 || cfg.TotalMass <= 0 {
		return nil, fmt.Errorf("ic: Model, AInit and TotalMass are required")
	}
	field, err := GenerateField(cfg.NGrid, cfg.L, cfg.PS, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.SecondOrder {
		if err := field.Add2LPT(); err != nil {
			return nil, err
		}
	}
	return Displace(field, cfg)
}

// Displace applies the Zel'dovich map of cfg to an existing field
// realization (exposed so tests can inject analytic fields).
func Displace(field *Field, cfg Config) ([]sim.Particle, error) {
	np, n := cfg.NP, cfg.NGrid
	stride := n / np
	a := cfg.AInit
	f1 := cfg.Model.GrowthRate(a)
	vfac := a * a * cfg.Model.H(a) * f1
	// 2LPT scalings relative to the first order (PS given at AInit ⇒ D₁=1).
	use2 := cfg.SecondOrder && field.Psi2X != nil
	const d2 = -3.0 / 7.0
	vfac2 := a * a * cfg.Model.H(a) * 2 * f1 * d2
	mass := cfg.TotalMass / float64(np*np*np)
	h := cfg.L / float64(n)
	out := make([]sim.Particle, 0, np*np*np)
	id := int64(0)
	for i := 0; i < np; i++ {
		for j := 0; j < np; j++ {
			for k := 0; k < np; k++ {
				gi, gj, gk := i*stride, j*stride, k*stride
				idx := (gi*n+gj)*n + gk
				qx := float64(gi) * h
				qy := float64(gj) * h
				qz := float64(gk) * h
				px := field.PsiX[idx]
				py := field.PsiY[idx]
				pz := field.PsiZ[idx]
				vx := vfac * px
				vy := vfac * py
				vz := vfac * pz
				if use2 {
					px += d2 * field.Psi2X[idx]
					py += d2 * field.Psi2Y[idx]
					pz += d2 * field.Psi2Z[idx]
					vx += vfac2 * field.Psi2X[idx]
					vy += vfac2 * field.Psi2Y[idx]
					vz += vfac2 * field.Psi2Z[idx]
				}
				out = append(out, sim.Particle{
					X:  wrap(qx+px, cfg.L),
					Y:  wrap(qy+py, cfg.L),
					Z:  wrap(qz+pz, cfg.L),
					VX: vx, VY: vy, VZ: vz,
					M: mass, ID: id,
				})
				id++
			}
		}
	}
	return out, nil
}

func wrap(x, l float64) float64 {
	x = math.Mod(x, l)
	if x < 0 {
		x += l
	}
	if x >= l {
		x -= l
	}
	return x
}

// SingleMode builds the analytic single-plane-wave displacement field
// Ψx(q) = amp·sin(2π·mode·qx/L) on an n³ grid: the textbook Zel'dovich test
// (a sinusoidal perturbation grows linearly as D(a) until shell crossing).
func SingleMode(n int, l, amp float64, mode int) *Field {
	size := n * n * n
	f := &Field{N: n, L: l,
		Delta: make([]float64, size),
		PsiX:  make([]float64, size),
		PsiY:  make([]float64, size),
		PsiZ:  make([]float64, size),
	}
	k := 2 * math.Pi * float64(mode) / l
	h := l / float64(n)
	for i := 0; i < n; i++ {
		qx := float64(i) * h
		psi := amp * math.Sin(k*qx)
		delta := -amp * k * math.Cos(k*qx) // δ = −∂Ψx/∂x
		for j := 0; j < n; j++ {
			for kk := 0; kk < n; kk++ {
				idx := (i*n+j)*n + kk
				f.PsiX[idx] = psi
				f.Delta[idx] = delta
			}
		}
	}
	return f
}

// Add2LPT computes the second-order Lagrangian perturbation theory
// displacement field from the realized first-order density: solving
// ∇²φ⁽²⁾ = Σ_{i<j} [φ⁽¹⁾,ii·φ⁽¹⁾,jj − (φ⁽¹⁾,ij)²] spectrally and storing
// ∇φ⁽²⁾ in Psi2X/Y/Z. The 2LPT displacement contribution is D₂·∇φ⁽²⁾ with
// D₂ ≈ −(3/7)·D₁² — the standard transient-reducing upgrade over the
// Zel'dovich approximation the paper starts from.
func (f *Field) Add2LPT() error {
	n := f.N
	plan, err := fft.NewPlan3(n, n, n)
	if err != nil {
		return err
	}
	size := n * n * n
	dHat := make([]complex128, size)
	for i, v := range f.Delta {
		dHat[i] = complex(v, 0)
	}
	plan.Forward(dHat)

	twoPiL := 2 * math.Pi / f.L
	kOf := func(j int) float64 { return twoPiL * float64(fold(j, n)) }
	// Tidal tensor components T_ij = φ⁽¹⁾,ij, with T̂ = k_i·k_j·δ̂/k².
	component := func(pick func(kx, ky, kz, k2 float64) float64) []float64 {
		w := make([]complex128, size)
		for jx := 0; jx < n; jx++ {
			kx := kOf(jx)
			for jy := 0; jy < n; jy++ {
				ky := kOf(jy)
				base := (jx*n + jy) * n
				for jz := 0; jz < n; jz++ {
					kz := kOf(jz)
					k2 := kx*kx + ky*ky + kz*kz
					if k2 == 0 {
						continue
					}
					w[base+jz] = dHat[base+jz] * complex(pick(kx, ky, kz, k2), 0)
				}
			}
		}
		plan.Inverse(w)
		out := make([]float64, size)
		for i := range out {
			out[i] = real(w[i])
		}
		return out
	}
	txx := component(func(kx, ky, kz, k2 float64) float64 { return kx * kx / k2 })
	tyy := component(func(kx, ky, kz, k2 float64) float64 { return ky * ky / k2 })
	tzz := component(func(kx, ky, kz, k2 float64) float64 { return kz * kz / k2 })
	txy := component(func(kx, ky, kz, k2 float64) float64 { return kx * ky / k2 })
	txz := component(func(kx, ky, kz, k2 float64) float64 { return kx * kz / k2 })
	tyz := component(func(kx, ky, kz, k2 float64) float64 { return ky * kz / k2 })

	src := make([]complex128, size)
	for i := 0; i < size; i++ {
		s := txx[i]*tyy[i] + txx[i]*tzz[i] + tyy[i]*tzz[i] -
			txy[i]*txy[i] - txz[i]*txz[i] - tyz[i]*tyz[i]
		src[i] = complex(s, 0)
	}
	plan.Forward(src)

	p2x := make([]complex128, size)
	p2y := make([]complex128, size)
	p2z := make([]complex128, size)
	for jx := 0; jx < n; jx++ {
		kx := kOf(jx)
		for jy := 0; jy < n; jy++ {
			ky := kOf(jy)
			base := (jx*n + jy) * n
			for jz := 0; jz < n; jz++ {
				kz := kOf(jz)
				k2 := kx*kx + ky*ky + kz*kz
				if k2 == 0 || fold(jx, n) == -n/2 || fold(jy, n) == -n/2 || fold(jz, n) == -n/2 {
					continue
				}
				// (∇φ⁽²⁾)̂ = −ik·Ŝ/k² (from ∇²φ⁽²⁾ = S).
				g := src[base+jz] * complex(0, -1/k2)
				p2x[base+jz] = g * complex(kx, 0)
				p2y[base+jz] = g * complex(ky, 0)
				p2z[base+jz] = g * complex(kz, 0)
			}
		}
	}
	plan.Inverse(p2x)
	plan.Inverse(p2y)
	plan.Inverse(p2z)
	f.Psi2X = make([]float64, size)
	f.Psi2Y = make([]float64, size)
	f.Psi2Z = make([]float64, size)
	for i := 0; i < size; i++ {
		f.Psi2X[i] = real(p2x[i])
		f.Psi2Y[i] = real(p2y[i])
		f.Psi2Z[i] = real(p2z[i])
	}
	return nil
}
