package ewald

import (
	"math"
	"math/rand"
	"testing"

	"greem/internal/vec"
)

func TestPairAccelAlphaIndependence(t *testing.T) {
	// The Ewald sum must not depend on the splitting parameter α.
	l := 1.0
	s1 := NewTuned(l, 1, 2.0/l, 3, 6)
	s2 := NewTuned(l, 1, 3.0/l, 4, 7)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		d := vec.V3{X: rng.Float64() - 0.5, Y: rng.Float64() - 0.5, Z: rng.Float64() - 0.5}
		if d.Norm() < 0.05 {
			continue
		}
		a1 := s1.PairAccel(d)
		a2 := s2.PairAccel(d)
		if a1.Sub(a2).Norm() > 1e-9*math.Max(1, a1.Norm()) {
			t.Errorf("alpha-dependence at d=%v: %v vs %v", d, a1, a2)
		}
	}
}

func TestPairPotAlphaIndependence(t *testing.T) {
	l := 1.0
	s1 := NewTuned(l, 1, 2.0/l, 3, 6)
	s2 := NewTuned(l, 1, 3.0/l, 4, 7)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20; i++ {
		d := vec.V3{X: rng.Float64() - 0.5, Y: rng.Float64() - 0.5, Z: rng.Float64() - 0.5}
		if d.Norm() < 0.05 {
			continue
		}
		p1 := s1.PairPot(d)
		p2 := s2.PairPot(d)
		if math.Abs(p1-p2) > 1e-9*math.Max(1, math.Abs(p1)) {
			t.Errorf("alpha-dependence at d=%v: %v vs %v", d, p1, p2)
		}
	}
}

func TestPairAccelShortRangeNewtonian(t *testing.T) {
	// At separations much less than L the periodic correction is small.
	s := New(1, 1)
	r := 0.01
	a := s.PairAccel(vec.V3{X: r})
	want := 1 / (r * r)
	if math.Abs(a.X-want)/want > 1e-4 {
		t.Errorf("short-range accel %v, want ~%v", a.X, want)
	}
	if math.Abs(a.Y) > 1e-8 || math.Abs(a.Z) > 1e-8 {
		t.Errorf("off-axis components (%v, %v) should vanish by symmetry", a.Y, a.Z)
	}
}

func TestPairAccelSymmetryPoints(t *testing.T) {
	// At the half-box displacement the net force vanishes by symmetry:
	// the particle sits exactly between two images.
	s := New(1, 1)
	for _, d := range []vec.V3{
		{X: 0.5}, {Y: 0.5}, {Z: 0.5}, {X: 0.5, Y: 0.5}, {X: 0.5, Y: 0.5, Z: 0.5},
	} {
		a := s.PairAccel(d)
		if a.Norm() > 1e-10 {
			t.Errorf("force at symmetric point %v = %v, want 0", d, a)
		}
	}
}

func TestPairAccelAntisymmetry(t *testing.T) {
	s := New(1, 1)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10; i++ {
		d := vec.V3{X: rng.Float64() - 0.5, Y: rng.Float64() - 0.5, Z: rng.Float64() - 0.5}
		if d.Norm() < 0.05 {
			continue
		}
		a := s.PairAccel(d)
		b := s.PairAccel(d.Neg())
		if a.Add(b).Norm() > 1e-10*math.Max(1, a.Norm()) {
			t.Errorf("antisymmetry violated at %v: %v vs %v", d, a, b)
		}
	}
}

func TestPairAccelMatchesPotentialGradient(t *testing.T) {
	s := New(1, 1)
	d := vec.V3{X: 0.21, Y: -0.13, Z: 0.32}
	h := 1e-6
	grad := vec.V3{
		X: (s.PairPot(d.Add(vec.V3{X: h})) - s.PairPot(d.Sub(vec.V3{X: h}))) / (2 * h),
		Y: (s.PairPot(d.Add(vec.V3{Y: h})) - s.PairPot(d.Sub(vec.V3{Y: h}))) / (2 * h),
		Z: (s.PairPot(d.Add(vec.V3{Z: h})) - s.PairPot(d.Sub(vec.V3{Z: h}))) / (2 * h),
	}
	// With d = r_j - r_i, the force on particle i is F_i = -grad_{r_i} U =
	// +grad_d U, so PairAccel must equal the numerical gradient of PairPot.
	a := s.PairAccel(d)
	if a.Sub(grad).Norm() > 1e-4*a.Norm() {
		t.Fatalf("accel %v does not match grad U %v", a, grad)
	}
}

func TestAccelUniformLatticeVanishes(t *testing.T) {
	// A particle in a uniform cubic lattice of equal masses feels zero force.
	l := 1.0
	s := New(l, 1)
	var x, y, z, m []float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 4; k++ {
				x = append(x, (float64(i)+0.5)*l/4)
				y = append(y, (float64(j)+0.5)*l/4)
				z = append(z, (float64(k)+0.5)*l/4)
				m = append(m, 1)
			}
		}
	}
	n := len(x)
	ax := make([]float64, n)
	ay := make([]float64, n)
	az := make([]float64, n)
	s.Accel(x, y, z, m, ax, ay, az)
	for i := 0; i < n; i++ {
		f := vec.V3{X: ax[i], Y: ay[i], Z: az[i]}
		if f.Norm() > 1e-8 {
			t.Fatalf("lattice particle %d feels force %v", i, f)
		}
	}
}

func TestAccelMomentumConservation(t *testing.T) {
	s := New(1, 1)
	rng := rand.New(rand.NewSource(4))
	n := 16
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	m := make([]float64, n)
	for i := range x {
		x[i], y[i], z[i], m[i] = rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()+0.5
	}
	ax := make([]float64, n)
	ay := make([]float64, n)
	az := make([]float64, n)
	s.Accel(x, y, z, m, ax, ay, az)
	var px, py, pz, scale float64
	for i := range x {
		px += m[i] * ax[i]
		py += m[i] * ay[i]
		pz += m[i] * az[i]
		scale += m[i] * (math.Abs(ax[i]) + math.Abs(ay[i]) + math.Abs(az[i]))
	}
	if math.Abs(px)+math.Abs(py)+math.Abs(pz) > 1e-10*scale {
		t.Errorf("net momentum (%v,%v,%v), scale %v", px, py, pz, scale)
	}
}

func TestEnergyAlphaIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 8
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	m := make([]float64, n)
	for i := range x {
		x[i], y[i], z[i], m[i] = rng.Float64(), rng.Float64(), rng.Float64(), 1.0
	}
	e1 := NewTuned(1, 1, 2.0, 3, 6).Energy(x, y, z, m)
	e2 := NewTuned(1, 1, 3.0, 4, 7).Energy(x, y, z, m)
	if math.Abs(e1-e2) > 1e-8*math.Abs(e1) {
		t.Errorf("energy alpha-dependence: %v vs %v", e1, e2)
	}
}

func TestPairCorrectionConsistency(t *testing.T) {
	s := New(1, 1)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 15; i++ {
		d := vec.V3{X: rng.Float64() - 0.5, Y: rng.Float64() - 0.5, Z: rng.Float64() - 0.5}
		r := d.Norm()
		if r < 0.05 {
			continue
		}
		// PairAccel = Newton(primary) + PairCorrection.
		newton := d.Scale(1 / (r * r * r))
		want := s.PairAccel(d)
		got := newton.Add(s.PairCorrection(d))
		if got.Sub(want).Norm() > 1e-10*math.Max(1, want.Norm()) {
			t.Errorf("correction inconsistent at %v: %v vs %v", d, got, want)
		}
	}
	// The correction is finite and tiny near the origin.
	c := s.PairCorrection(vec.V3{X: 1e-4, Y: 1e-4, Z: 1e-4})
	if math.IsNaN(c.X) || c.Norm() > 10 {
		t.Errorf("correction near origin misbehaves: %v", c)
	}
}
