// Package ewald computes exact gravitational forces and potentials under
// periodic boundary conditions by Ewald summation. It is the ground truth
// against which the TreePM force split (PP cutoff kernel + PM mesh) is
// validated: the paper's operating point N_PM ∈ [N/4³, N/2³],
// rcut = 3/N_PM^(1/3) is chosen to minimize exactly this error.
//
// The summation splits the conditionally convergent lattice sum with a
// Gaussian screen of width 1/α: a rapidly converging real-space sum over
// lattice images plus a rapidly converging reciprocal-space sum, with the
// usual neutralizing-background and self terms. The result is independent of
// α, which the tests exploit.
package ewald

import (
	"math"

	"greem/internal/vec"
)

// Solver evaluates Ewald-summed periodic gravity in a cube of side L.
type Solver struct {
	L, G  float64
	alpha float64
	rmax  int // real-space images |n|∞ ≤ rmax
	kvecs []kvec
	kmax  int
}

type kvec struct {
	kx, ky, kz float64
	coef       float64 // (4π/L³)·exp(−k²/4α²)/k²
}

// New creates a solver with tuning good to ~1e-11 relative force error:
// α = 2.5/L, real-space images to |n|∞ ≤ 3, reciprocal modes to |h|∞ ≤ 5.
func New(l, g float64) *Solver {
	return NewTuned(l, g, 2.5/l, 3, 5)
}

// NewTuned creates a solver with explicit splitting parameter and cutoffs,
// used by the α-independence tests.
func NewTuned(l, g, alpha float64, rmax, kmax int) *Solver {
	s := &Solver{L: l, G: g, alpha: alpha, rmax: rmax, kmax: kmax}
	for hx := -kmax; hx <= kmax; hx++ {
		for hy := -kmax; hy <= kmax; hy++ {
			for hz := -kmax; hz <= kmax; hz++ {
				h2 := hx*hx + hy*hy + hz*hz
				if h2 == 0 || h2 > kmax*kmax {
					continue
				}
				kx := 2 * math.Pi * float64(hx) / l
				ky := 2 * math.Pi * float64(hy) / l
				kz := 2 * math.Pi * float64(hz) / l
				k2 := kx*kx + ky*ky + kz*kz
				coef := 4 * math.Pi / (l * l * l) * math.Exp(-k2/(4*alpha*alpha)) / k2
				s.kvecs = append(s.kvecs, kvec{kx, ky, kz, coef})
			}
		}
	}
	return s
}

// PairAccel returns the acceleration per unit source mass (times G) on a
// particle at the origin due to a unit mass at displacement d and all its
// periodic images. d need not be minimum-imaged.
func (s *Solver) PairAccel(d vec.V3) vec.V3 {
	d = vec.MinImage(vec.V3{}, d, s.L)
	var f vec.V3
	a := s.alpha
	twoASqrtPi := 2 * a / math.Sqrt(math.Pi)
	for nx := -s.rmax; nx <= s.rmax; nx++ {
		for ny := -s.rmax; ny <= s.rmax; ny++ {
			for nz := -s.rmax; nz <= s.rmax; nz++ {
				rx := d.X + float64(nx)*s.L
				ry := d.Y + float64(ny)*s.L
				rz := d.Z + float64(nz)*s.L
				r2 := rx*rx + ry*ry + rz*rz
				if r2 == 0 {
					continue
				}
				r := math.Sqrt(r2)
				w := (math.Erfc(a*r)/r + twoASqrtPi*math.Exp(-a*a*r2)) / r2
				f.X += w * rx
				f.Y += w * ry
				f.Z += w * rz
			}
		}
	}
	for _, k := range s.kvecs {
		ph := k.kx*d.X + k.ky*d.Y + k.kz*d.Z
		w := k.coef * math.Sin(ph)
		f.X += w * k.kx
		f.Y += w * k.ky
		f.Z += w * k.kz
	}
	return f.Scale(s.G)
}

// PairPot returns the interaction potential per unit source mass (times G)
// between a particle at the origin and a unit mass at displacement d plus all
// periodic images, including the neutralizing background term −π/(α²L³),
// which makes the value independent of α.
func (s *Solver) PairPot(d vec.V3) float64 {
	d = vec.MinImage(vec.V3{}, d, s.L)
	a := s.alpha
	sum := -math.Pi / (a * a * s.L * s.L * s.L)
	for nx := -s.rmax; nx <= s.rmax; nx++ {
		for ny := -s.rmax; ny <= s.rmax; ny++ {
			for nz := -s.rmax; nz <= s.rmax; nz++ {
				rx := d.X + float64(nx)*s.L
				ry := d.Y + float64(ny)*s.L
				rz := d.Z + float64(nz)*s.L
				r2 := rx*rx + ry*ry + rz*rz
				if r2 == 0 {
					continue
				}
				r := math.Sqrt(r2)
				sum += math.Erfc(a*r) / r
			}
		}
	}
	for _, k := range s.kvecs {
		ph := k.kx*d.X + k.ky*d.Y + k.kz*d.Z
		sum += k.coef * math.Cos(ph)
	}
	return -s.G * sum
}

// SelfEnergy returns the interaction energy of a unit mass with its own
// periodic images (excluding the n = 0 singular term), i.e. the Ewald
// potential at d → 0 with the central 1/r removed: −G·(2α/√π + π/(α²L³) − Σ…).
func (s *Solver) SelfEnergy() float64 {
	a := s.alpha
	sum := -math.Pi/(a*a*s.L*s.L*s.L) - 2*a/math.Sqrt(math.Pi)
	for nx := -s.rmax; nx <= s.rmax; nx++ {
		for ny := -s.rmax; ny <= s.rmax; ny++ {
			for nz := -s.rmax; nz <= s.rmax; nz++ {
				if nx == 0 && ny == 0 && nz == 0 {
					continue
				}
				r := s.L * math.Sqrt(float64(nx*nx+ny*ny+nz*nz))
				sum += math.Erfc(a*r) / r
			}
		}
	}
	for _, k := range s.kvecs {
		sum += k.coef
	}
	return -s.G * sum
}

// Accel adds the exact periodic accelerations of the N-body system into
// (ax, ay, az). O(N²·images); reference use only.
func (s *Solver) Accel(x, y, z, m []float64, ax, ay, az []float64) {
	for i := range x {
		var acc vec.V3
		for j := range x {
			if i == j {
				continue
			}
			d := vec.V3{X: x[j] - x[i], Y: y[j] - y[i], Z: z[j] - z[i]}
			acc = acc.Add(s.PairAccel(d).Scale(m[j]))
		}
		ax[i] += acc.X
		ay[i] += acc.Y
		az[i] += acc.Z
	}
}

// Energy returns the total potential energy of the system under periodic
// boundary conditions, including image self-energy terms.
func (s *Solver) Energy(x, y, z, m []float64) float64 {
	var e float64
	for i := range x {
		for j := i + 1; j < len(x); j++ {
			d := vec.V3{X: x[j] - x[i], Y: y[j] - y[i], Z: z[j] - z[i]}
			e += m[i] * m[j] * s.PairPot(d)
		}
	}
	self := s.SelfEnergy()
	for i := range x {
		e += 0.5 * m[i] * m[i] * self
	}
	return e
}

// PairCorrection returns PairAccel(d) minus the primary-image Newtonian term
// G·d/|d|³ (d minimum-imaged): the smooth periodic-image correction a tree
// code adds to min-image forces to recover full periodicity. Unlike
// computing the difference directly, the singular n = 0 real-space term is
// replaced analytically by its finite remainder −erf(αr)·d/r³ + screen, so
// the result is well behaved down to d → 0 (where it vanishes).
func (s *Solver) PairCorrection(d vec.V3) vec.V3 {
	return s.PairCorrectionAt(vec.MinImage(vec.V3{}, d, s.L))
}

// PairCorrectionAt is PairCorrection evaluated at exactly the given
// representative, without re-minimum-imaging. Needed at the |d_i| = L/2
// boundary, where the correction is one-sided discontinuous (the primary
// image flips there) and the caller must control which side it gets —
// the ewtab table construction uses the +L/2 side.
func (s *Solver) PairCorrectionAt(d vec.V3) vec.V3 {
	var f vec.V3
	a := s.alpha
	twoASqrtPi := 2 * a / math.Sqrt(math.Pi)
	for nx := -s.rmax; nx <= s.rmax; nx++ {
		for ny := -s.rmax; ny <= s.rmax; ny++ {
			for nz := -s.rmax; nz <= s.rmax; nz++ {
				rx := d.X + float64(nx)*s.L
				ry := d.Y + float64(ny)*s.L
				rz := d.Z + float64(nz)*s.L
				r2 := rx*rx + ry*ry + rz*rz
				if r2 == 0 {
					continue
				}
				r := math.Sqrt(r2)
				var w float64
				if nx == 0 && ny == 0 && nz == 0 {
					// erfc/r − 1/r = −erf/r, finite as r → 0.
					w = (-math.Erf(a*r)/r + twoASqrtPi*math.Exp(-a*a*r2)) / r2
				} else {
					w = (math.Erfc(a*r)/r + twoASqrtPi*math.Exp(-a*a*r2)) / r2
				}
				f.X += w * rx
				f.Y += w * ry
				f.Z += w * rz
			}
		}
	}
	for _, k := range s.kvecs {
		ph := k.kx*d.X + k.ky*d.Y + k.kz*d.Z
		w := k.coef * math.Sin(ph)
		f.X += w * k.kx
		f.Y += w * k.ky
		f.Z += w * k.kz
	}
	return f.Scale(s.G)
}
