package mesh

import (
	"math"
	"math/rand"
	"testing"
)

func TestGreenTabMatchesKGreenW(t *testing.T) {
	n, l, g, rcut := 8, 1.0, 1.0, 3.0/8
	for _, order := range []int{2, 3} {
		for _, dec := range []bool{true, false} {
			tab := NewGreenTab(n, l, g, rcut, dec, order)
			if tab == nil {
				t.Fatalf("no table for n=%d", n)
			}
			for jx := 0; jx < n; jx++ {
				for jy := 0; jy < n; jy++ {
					for jz := 0; jz <= n/2; jz++ {
						want := KGreenW(jx, jy, jz, n, l, g, rcut, dec, order)
						if got := tab.At(jx, jy, jz); got != want {
							t.Fatalf("order=%d dec=%v At(%d,%d,%d) = %v, want %v", order, dec, jx, jy, jz, got, want)
						}
					}
				}
			}
		}
	}
}

// TestGreenTabAtFullFolds: for jz beyond n/2 the table folds onto the mirror
// mode, which must agree with direct evaluation (G is even per axis).
func TestGreenTabAtFullFolds(t *testing.T) {
	n, l, g, rcut := 8, 1.0, 1.0, 3.0/8
	tab := NewGreenTab(n, l, g, rcut, true, 3)
	for jx := 0; jx < n; jx++ {
		for jy := 0; jy < n; jy++ {
			for jz := 0; jz < n; jz++ {
				want := KGreenW(jx, jy, jz, n, l, g, rcut, true, 3)
				got := tab.AtFull(jx, jy, jz)
				if math.Abs(got-want) > 1e-15*math.Abs(want) {
					t.Fatalf("AtFull(%d,%d,%d) = %v, want %v", jx, jy, jz, got, want)
				}
			}
		}
	}
}

func TestGreenTabRejectsOddSizes(t *testing.T) {
	for _, n := range []int{0, 1, 3, 7} {
		if tab := NewGreenTab(n, 1, 1, 0.3, true, 3); tab != nil {
			t.Errorf("NewGreenTab(n=%d) should be nil (direct-evaluation fallback)", n)
		}
	}
}

func TestGreenTableCachesAcrossCalls(t *testing.T) {
	a := GreenTable(16, 1, 1, 3.0/16, true, 3)
	b := GreenTable(16, 1, 1, 3.0/16, true, 3)
	if a == nil || a != b {
		t.Errorf("GreenTable did not return the cached instance (%p vs %p)", a, b)
	}
	c := GreenTable(16, 1, 1, 3.0/16, false, 3)
	if c == a {
		t.Error("different parameters must not share a table")
	}
}

// TestSolveRealMatchesComplex: the r2c half-spectrum solve must reproduce
// the full complex reference path's potential and accelerations to rounding.
func TestSolveRealMatchesComplex(t *testing.T) {
	n := 16
	rng := rand.New(rand.NewSource(42))
	np := 64
	x := make([]float64, np)
	y := make([]float64, np)
	z := make([]float64, np)
	m := make([]float64, np)
	for i := 0; i < np; i++ {
		x[i], y[i], z[i] = rng.Float64(), rng.Float64(), rng.Float64()
		m[i] = rng.Float64() + 0.5
	}
	run := func(opts ...Option) (ax, ay, az []float64) {
		pm, err := New(n, 1, 1, 3.0/float64(n), opts...)
		if err != nil {
			t.Fatal(err)
		}
		ax = make([]float64, np)
		ay = make([]float64, np)
		az = make([]float64, np)
		pm.Accel(x, y, z, m, ax, ay, az)
		return
	}
	rx, ry, rz := run()
	cx, cy, cz := run(WithComplexFFT())
	var scale float64
	for i := range rx {
		scale = math.Max(scale, math.Abs(cx[i])+math.Abs(cy[i])+math.Abs(cz[i]))
	}
	for i := range rx {
		d := math.Abs(rx[i]-cx[i]) + math.Abs(ry[i]-cy[i]) + math.Abs(rz[i]-cz[i])
		if d/scale > 1e-12 {
			t.Fatalf("r2c vs complex acceleration mismatch at %d: rel %g", i, d/scale)
		}
	}
}

func BenchmarkSolve128Real(b *testing.B) { benchSolve(b, 128) }

func BenchmarkSolve128Complex(b *testing.B) { benchSolve(b, 128, WithComplexFFT()) }

func BenchmarkSolve64Real(b *testing.B) { benchSolve(b, 64) }

func BenchmarkSolve64Complex(b *testing.B) { benchSolve(b, 64, WithComplexFFT()) }

func benchSolve(b *testing.B, n int, opts ...Option) {
	pm, err := New(n, 1, 1, 3.0/float64(n), opts...)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := range pm.Rho {
		pm.Rho[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pm.Solve()
	}
	// ~2.5 n³ log2(n³) real flops for the r2c transform pair plus the
	// convolution — report rate so before/after Gflops lands in EXPERIMENTS.
	n3 := float64(n) * float64(n) * float64(n)
	flops := 2.5 * n3 * 3 * math.Log2(float64(n))
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "Gflops")
}
