package mesh

import (
	"fmt"
	"math/rand"
	"testing"
)

// parTestParticles returns a reproducible particle set inside [0, l).
func parTestParticles(np int, l float64) (x, y, z, m []float64) {
	rng := rand.New(rand.NewSource(99))
	x = make([]float64, np)
	y = make([]float64, np)
	z = make([]float64, np)
	m = make([]float64, np)
	for i := 0; i < np; i++ {
		x[i] = rng.Float64() * l
		y[i] = rng.Float64() * l
		z[i] = rng.Float64() * l
		m[i] = 0.5 + rng.Float64()
	}
	return
}

// TestAssignTSCWorkersBitIdentical: the plane-ownership parallel deposit must
// reproduce the serial density bit for bit at every worker count.
func TestAssignTSCWorkersBitIdentical(t *testing.T) {
	const n, np = 16, 500
	l := 1.0
	x, y, z, m := parTestParticles(np, l)

	ref, err := New(n, l, 1, 3.0/float64(n))
	if err != nil {
		t.Fatal(err)
	}
	ref.AssignTSC(x, y, z, m)

	for _, w := range []int{1, 2, 7} {
		pm, err := New(n, l, 1, 3.0/float64(n), WithWorkers(w))
		if err != nil {
			t.Fatal(err)
		}
		pm.AssignTSC(x, y, z, m)
		for i := range pm.Rho {
			if pm.Rho[i] != ref.Rho[i] {
				t.Fatalf("workers=%d: Rho[%d] = %v, serial %v (not bit-identical)", w, i, pm.Rho[i], ref.Rho[i])
			}
		}
		pm.Close()
	}
}

// TestAccelWorkersBitIdentical runs the full PM pipeline — assignment, r2c
// solve with convolution, differencing, interpolation — and demands
// bit-identical accelerations at Workers ∈ {1, 2, 7}.
func TestAccelWorkersBitIdentical(t *testing.T) {
	const n, np = 16, 400
	l := 1.0
	x, y, z, m := parTestParticles(np, l)

	run := func(w int) (ax, ay, az []float64, pm *PM) {
		var opts []Option
		if w > 0 {
			opts = append(opts, WithWorkers(w))
		}
		pm, err := New(n, l, 1, 3.0/float64(n), opts...)
		if err != nil {
			t.Fatal(err)
		}
		ax = make([]float64, np)
		ay = make([]float64, np)
		az = make([]float64, np)
		pm.Accel(x, y, z, m, ax, ay, az)
		return
	}

	rx, ry, rz, ref := run(0)
	for _, w := range []int{1, 2, 7} {
		ax, ay, az, pm := run(w)
		for i := 0; i < np; i++ {
			if ax[i] != rx[i] || ay[i] != ry[i] || az[i] != rz[i] {
				t.Fatalf("workers=%d: accel[%d] = (%v, %v, %v), serial (%v, %v, %v)",
					w, i, ax[i], ay[i], az[i], rx[i], ry[i], rz[i])
			}
		}
		// The meshes must match too (solve + convolution + differencing).
		for i := range pm.Phi {
			if pm.Phi[i] != ref.Phi[i] || pm.Fx[i] != ref.Fx[i] {
				t.Fatalf("workers=%d: mesh cell %d differs from serial", w, i)
			}
		}
		pm.Close()
	}
	ref.Close()
}

// TestInterpolatePotWorkersBitIdentical covers the potential diagnostic.
func TestInterpolatePotWorkersBitIdentical(t *testing.T) {
	const n, np = 8, 200
	l := 1.0
	x, y, z, m := parTestParticles(np, l)

	ref, err := New(n, l, 1, 3.0/float64(n))
	if err != nil {
		t.Fatal(err)
	}
	ref.Accel(x, y, z, m, make([]float64, np), make([]float64, np), make([]float64, np))
	want := make([]float64, np)
	ref.InterpolatePot(x, y, z, want)

	for _, w := range []int{2, 7} {
		pm, err := New(n, l, 1, 3.0/float64(n), WithWorkers(w))
		if err != nil {
			t.Fatal(err)
		}
		pm.Accel(x, y, z, m, make([]float64, np), make([]float64, np), make([]float64, np))
		got := make([]float64, np)
		pm.InterpolatePot(x, y, z, got)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: pot[%d] = %v, serial %v", w, i, got[i], want[i])
			}
		}
		pm.Close()
	}
}

// TestAccelZeroAllocs: the assignment/interpolation scratch is hoisted onto
// the PM struct, so a warm full-pipeline Accel must not allocate — serial
// and pooled alike.
func TestAccelZeroAllocs(t *testing.T) {
	const n, np = 16, 300
	l := 1.0
	x, y, z, m := parTestParticles(np, l)
	ax := make([]float64, np)
	ay := make([]float64, np)
	az := make([]float64, np)

	for _, w := range []int{0, 4} {
		pm, err := New(n, l, 1, 3.0/float64(n), WithWorkers(w))
		if err != nil {
			t.Fatal(err)
		}
		pm.Accel(x, y, z, m, ax, ay, az) // warm up: scratch + pool start
		if allocs := testing.AllocsPerRun(10, func() {
			pm.Accel(x, y, z, m, ax, ay, az)
		}); allocs != 0 {
			t.Errorf("workers=%d: warm Accel allocates %v objects per run, want 0", w, allocs)
		}
		pm.Close()
	}
}

// BenchmarkSolve128Workers is the bench-scaling target: the r2c Poisson
// solve at 1/2/4/8 workers (`make bench-scaling`).
func BenchmarkSolve128Workers(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			benchSolve(b, 128, WithWorkers(w))
		})
	}
}
