// Package mesh implements the serial particle-mesh (PM) long-range gravity
// solver of the TreePM split: TSC (triangular-shaped cloud) mass assignment,
// an FFT Poisson solve with the S2-shape long-range Green's function,
// four-point finite-difference accelerations on the mesh, and TSC force
// interpolation back to particle positions — the five PM steps of §II-B of
// the paper, without the parallel mesh conversions (those live in pmpar).
package mesh

import (
	"fmt"
	"math"

	"greem/internal/fft"
	"greem/internal/par"
)

// S2Hat is the Fourier transform of the unit-mass S2 density shape of paper
// eq. 1: S̃2(u) = 12(2 − 2cos u − u sin u)/u⁴ with u = k·rcut/2. It tends to
// 1 as u → 0 (point mass) and falls off as u⁻³, which is what confines the
// PM force to long wavelengths.
func S2Hat(u float64) float64 {
	if u < 0.5 {
		// The closed form suffers catastrophic cancellation as u → 0
		// (2 − 2cos u − u·sin u ≈ u⁴/12 computed from O(1) terms), so use
		// the series 1 − u²/15 + u⁴/560 − u⁶/37800 + O(u⁸/4·10⁶).
		u2 := u * u
		return 1 + u2*(-1.0/15+u2*(1.0/560-u2/37800))
	}
	return 12 * (2 - 2*math.Cos(u) - u*math.Sin(u)) / (u * u * u * u)
}

// KGreen returns the k-space Green's function multiplier for FFT mode
// (jx, jy, jz) of an n³ mesh on a periodic box of side l:
//
//	G̃(k) = −4πG/k² · S̃2(k·rcut/2)²  [ · 1/W(k)² if deconvolve ]
//
// where W is the TSC assignment window, deconvolved twice (once for mass
// assignment, once for force interpolation). The k = 0 mode returns 0, which
// subtracts the mean density (the periodic "Jeans swindle"). The S̃2² factor
// is the pair of S2 clouds whose mutual force defines the eq. 3 cutoff, so
// PP + PM sums to the exact 1/r² pair force.
func KGreen(jx, jy, jz, n int, l, g, rcut float64, deconvolve bool) float64 {
	return KGreenW(jx, jy, jz, n, l, g, rcut, deconvolve, 3)
}

// foldMode maps an FFT index j ∈ [0, n) to the signed mode number in
// [−n/2, n/2).
func foldMode(j, n int) int {
	if j > n/2 {
		return j - n
	}
	if j == n/2 {
		return -n / 2
	}
	return j
}

// tscWindow is the one-dimensional TSC assignment window in k-space,
// sinc³(π·m/n) for mode m.
func tscWindow(m, n int) float64 { return assignWindow(m, n, 3) }

// assignWindow is sincᵖ(π·m/n): p = 2 for CIC, p = 3 for TSC.
func assignWindow(m, n, p int) float64 {
	if m == 0 {
		return 1
	}
	x := math.Pi * float64(m) / float64(n)
	s := math.Sin(x) / x
	out := s
	for i := 1; i < p; i++ {
		out *= s
	}
	return out
}

// KGreenW is KGreen with an explicit assignment-window order for the
// deconvolution (2 = CIC, 3 = TSC).
func KGreenW(jx, jy, jz, n int, l, g, rcut float64, deconvolve bool, order int) float64 {
	if jx == 0 && jy == 0 && jz == 0 {
		return 0
	}
	nx := foldMode(jx, n)
	ny := foldMode(jy, n)
	nz := foldMode(jz, n)
	kx := 2 * math.Pi * float64(nx) / l
	ky := 2 * math.Pi * float64(ny) / l
	kz := 2 * math.Pi * float64(nz) / l
	k2 := kx*kx + ky*ky + kz*kz
	s := S2Hat(math.Sqrt(k2) * rcut / 2)
	out := -4 * math.Pi * g / k2 * s * s
	if deconvolve {
		w := assignWindow(nx, n, order) * assignWindow(ny, n, order) * assignWindow(nz, n, order)
		out /= w * w
	}
	return out
}

// PM is a serial particle-mesh solver on an n³ periodic mesh.
type PM struct {
	n          int
	l          float64
	g          float64
	rcut       float64
	deconvolve bool
	spectral   bool
	// order is the assignment-window order: 3 = TSC (default, the paper's
	// scheme, 27-point), 2 = CIC (8-point, the cheaper/noisier ablation).
	order int
	// complexFFT forces the full complex transform path (the pre-r2c
	// reference implementation, kept for parity tests and benchmarks).
	complexFFT bool

	h     float64 // cell size l/n
	plan  *fft.Plan3
	rplan *fft.RealPlan3 // r2c path; nil when n < 2
	green *GreenTab      // cached multiplier table; nil → direct KGreenW

	// workers is the Workers knob (see par.Resolve); the solver owns its
	// pool and Close releases it.
	workers int
	pool    *par.Pool

	Rho        []float64    // density mesh, ρ (mass / volume)
	Phi        []float64    // potential mesh
	Fx, Fy, Fz []float64    // acceleration meshes
	spec       []complex128 // persistent half-spectrum, n·n·(n/2+1)
	work       []complex128 // full complex mesh, lazily allocated

	// Hoisted per-call scratch for the two-pass parallel assignment: pass A
	// precomputes wrapped per-axis stencil indices and weights per particle;
	// pass B deposits by x-plane ownership. Grown amortized, never shrunk.
	wix, wiy, wiz [][3]int32
	wwx, wwy, wwz [][3]float64

	// Spectral-differentiation ablation meshes, lazily allocated once.
	phiHat, fxHat, fyHat, fzHat []complex128

	// Current batch state for the bound range tasks (hoisted so the hot
	// loops allocate nothing in steady state).
	tx, ty, tz, tm []float64
	tax, tay, taz  []float64
	tpot           []float64
	np             int
	tvinv          float64

	taskPrep, taskDeposit, taskConv, taskConvC func(w, lo, hi int)
	taskDiff, taskInterp, taskPot              func(w, lo, hi int)
}

// Option configures a PM solver.
type Option func(*PM)

// WithoutDeconvolution disables the TSC window deconvolution (an ablation;
// the production configuration deconvolves).
func WithoutDeconvolution() Option { return func(p *PM) { p.deconvolve = false } }

// WithCIC switches mass assignment and force interpolation from TSC (the
// paper's 27-point scheme) to cloud-in-cell (8-point) — the classic cheaper
// assignment whose extra mesh-scale noise the TSC choice avoids.
func WithCIC() Option { return func(p *PM) { p.order = 2 } }

// WithSpectralDifferentiation replaces the four-point real-space finite
// difference with exact k-space differentiation (multiplying by ik). This is
// the ablation the paper's scheme trades away: it needs three inverse FFTs
// instead of one, but removes the differencing error at mesh-scale
// wavelengths.
func WithSpectralDifferentiation() Option { return func(p *PM) { p.spectral = true } }

// WithComplexFFT keeps the Poisson solve on the full complex-to-complex
// transform instead of the real-to-complex half-spectrum path. This is the
// reference/ablation configuration: twice the FFT arithmetic and spectral
// memory for identical (to rounding) potentials.
func WithComplexFFT() Option { return func(p *PM) { p.complexFFT = true } }

// WithWorkers sets the intra-rank worker count for every PM hot loop
// (assignment, FFT lines, convolution, differencing, interpolation); the
// knob resolves through par.Resolve (0 ⇒ serial, par.Auto ⇒ GOMAXPROCS).
// Results are bit-identical to serial for any worker count; call Close when
// done to release the pool.
func WithWorkers(w int) Option { return func(p *PM) { p.workers = w } }

// New creates a PM solver for an n³ mesh (n a power of two) on a periodic
// box of side l with gravitational constant g and force-split radius rcut.
func New(n int, l, g, rcut float64, opts ...Option) (*PM, error) {
	if l <= 0 || g <= 0 || rcut <= 0 {
		return nil, fmt.Errorf("mesh: l, g, rcut must be positive (got %v, %v, %v)", l, g, rcut)
	}
	plan, err := fft.NewPlan3(n, n, n)
	if err != nil {
		return nil, fmt.Errorf("mesh: %w", err)
	}
	size := n * n * n
	pm := &PM{
		n: n, l: l, g: g, rcut: rcut, deconvolve: true, order: 3,
		h:    l / float64(n),
		plan: plan,
		Rho:  make([]float64, size),
		Phi:  make([]float64, size),
		Fx:   make([]float64, size),
		Fy:   make([]float64, size),
		Fz:   make([]float64, size),
	}
	for _, o := range opts {
		o(pm)
	}
	// The multiplier table and transform plans depend on the options, so
	// they come last. n == 1 has no real plan and falls back to the complex
	// path; odd sizes have no table and fall back to direct evaluation.
	pm.green = GreenTable(n, l, g, rcut, pm.deconvolve, pm.order)
	if n >= 2 && !pm.complexFFT {
		rplan, err := fft.NewRealPlan3(n, n, n)
		if err != nil {
			return nil, fmt.Errorf("mesh: %w", err)
		}
		pm.rplan = rplan
		pm.spec = make([]complex128, rplan.SpecLen())
	}
	pm.pool = par.New(par.Resolve(pm.workers, 1))
	if pm.pool != nil {
		pm.plan.SetPool(pm.pool)
		if pm.rplan != nil {
			pm.rplan.SetPool(pm.pool)
		}
	}
	pm.taskPrep = pm.assignPrep
	pm.taskDeposit = pm.assignDeposit
	pm.taskConv = pm.convRows
	pm.taskConvC = pm.convRowsComplex
	pm.taskDiff = pm.diffRows
	pm.taskInterp = pm.interpRange
	pm.taskPot = pm.potRange
	return pm, nil
}

// Close releases the solver's worker pool (no-op for a serial solver).
func (pm *PM) Close() {
	pm.pool.Close()
	pm.pool = nil
}

// ensureWork lazily allocates the full complex mesh used only by the
// complex-FFT and spectral-differentiation paths.
func (pm *PM) ensureWork() {
	if pm.work == nil {
		pm.work = make([]complex128, pm.n*pm.n*pm.n)
	}
}

// greenAt returns the Green's multiplier for a full-range mode, from the
// table when one exists and by direct evaluation otherwise.
func (pm *PM) greenAt(jx, jy, jz int) float64 {
	if pm.green != nil {
		return pm.green.AtFull(jx, jy, jz)
	}
	return KGreenW(jx, jy, jz, pm.n, pm.l, pm.g, pm.rcut, pm.deconvolve, pm.order)
}

// N returns the mesh size per dimension.
func (pm *PM) N() int { return pm.n }

// CellSize returns l/n.
func (pm *PM) CellSize() float64 { return pm.h }

// Clear zeroes the density mesh ahead of a new assignment pass.
func (pm *PM) Clear() {
	for i := range pm.Rho {
		pm.Rho[i] = 0
	}
}

func (pm *PM) idx(ix, iy, iz int) int { return (ix*pm.n+iy)*pm.n + iz }

// tsc computes the assignment base index and weights for coordinate x (in
// [0, l)): three TSC weights at (i0, i0+1, i0+2) mod n, or — in CIC mode —
// two linear weights with w[2] = 0.
func (pm *PM) tsc(x float64) (i0 int, w [3]float64) {
	u := x / pm.h
	if pm.order == 2 {
		f := math.Floor(u)
		d := u - f
		w[0] = 1 - d
		w[1] = d
		return int(f), w
	}
	ng := math.Round(u)
	d := u - ng
	w[0] = 0.5 * (0.5 - d) * (0.5 - d)
	w[1] = 0.75 - d*d
	w[2] = 0.5 * (0.5 + d) * (0.5 + d)
	i0 = int(ng) - 1
	return i0, w
}

// support returns the per-axis stencil width (2 for CIC, 3 for TSC).
func (pm *PM) support() int {
	if pm.order == 2 {
		return 2
	}
	return 3
}

func (pm *PM) wrapIdx(i int) int {
	i %= pm.n
	if i < 0 {
		i += pm.n
	}
	return i
}

// growScratch sizes the per-particle assignment scratch (amortized; the
// backing arrays persist on the struct so a steady-state step allocates
// nothing).
func (pm *PM) growScratch(np int) {
	if cap(pm.wix) < np {
		pm.wix = make([][3]int32, np)
		pm.wiy = make([][3]int32, np)
		pm.wiz = make([][3]int32, np)
		pm.wwx = make([][3]float64, np)
		pm.wwy = make([][3]float64, np)
		pm.wwz = make([][3]float64, np)
	}
	pm.wix = pm.wix[:np]
	pm.wiy = pm.wiy[:np]
	pm.wiz = pm.wiz[:np]
	pm.wwx = pm.wwx[:np]
	pm.wwy = pm.wwy[:np]
	pm.wwz = pm.wwz[:np]
}

// assignPrep (pass A) computes each particle's wrapped stencil indices and
// weights; particles are independent, so the range split is race-free. The
// particle mass (over cell volume) folds into the x weights exactly as the
// serial loop did (wx[a]·mv), preserving the multiplication order.
func (pm *PM) assignPrep(w, lo, hi int) {
	sup := pm.support()
	for p := lo; p < hi; p++ {
		ix, wx := pm.tsc(pm.tx[p])
		iy, wy := pm.tsc(pm.ty[p])
		iz, wz := pm.tsc(pm.tz[p])
		mv := pm.tm[p] * pm.tvinv
		for a := 0; a < sup; a++ {
			pm.wix[p][a] = int32(pm.wrapIdx(ix + a))
			pm.wiy[p][a] = int32(pm.wrapIdx(iy + a))
			pm.wiz[p][a] = int32(pm.wrapIdx(iz + a))
			pm.wwx[p][a] = wx[a] * mv
			pm.wwy[p][a] = wy[a]
			pm.wwz[p][a] = wz[a]
		}
	}
}

// assignDeposit (pass B) deposits by x-plane ownership: the pool hands
// worker w the contiguous plane range [lo, hi) and the worker scans every
// particle, depositing only stencil planes it owns. Each cell therefore
// receives its contributions in exactly the serial particle-and-stencil
// order, so the parallel density is bit-identical to the serial one for any
// worker count — the owner-computes analogue of the deterministic reduction
// the cross-rank assignment uses.
func (pm *PM) assignDeposit(w, lo, hi int) {
	n := pm.n
	sup := pm.support()
	for p := 0; p < pm.np; p++ {
		for a := 0; a < sup; a++ {
			ia := int(pm.wix[p][a])
			if ia < lo || ia >= hi {
				continue
			}
			wxa := pm.wwx[p][a]
			for b := 0; b < sup; b++ {
				wab := wxa * pm.wwy[p][b]
				rowBase := (ia*n + int(pm.wiy[p][b])) * n
				for c := 0; c < sup; c++ {
					pm.Rho[rowBase+int(pm.wiz[p][c])] += wab * pm.wwz[p][c]
				}
			}
		}
	}
}

// AssignTSC deposits the masses m at positions (x, y, z) onto the density
// mesh with the TSC scheme, in which each particle interacts with 27 grid
// points (paper §II-B step 1). Positions must lie in [0, l).
func (pm *PM) AssignTSC(x, y, z, m []float64) {
	pm.growScratch(len(x))
	pm.tx, pm.ty, pm.tz, pm.tm = x, y, z, m
	pm.np = len(x)
	pm.tvinv = 1 / (pm.h * pm.h * pm.h)
	pm.pool.Run(len(x), pm.taskPrep)
	pm.pool.Run(pm.n, pm.taskDeposit)
	pm.tx, pm.ty, pm.tz, pm.tm = nil, nil, nil, nil
}

// Solve computes the long-range potential from the density mesh: forward
// FFT, Green's-function convolution, inverse FFT (paper §II-B step 3).
//
// The density is real, so by default the solve runs r2c → half-spectrum
// convolution → c2r on the persistent spec buffer: half the transform
// arithmetic and spectral memory of the complex path. The multiplier is
// real and even, so the convolution preserves Hermitian symmetry — the
// jz = 0 and jz = n/2 planes need no special casing beyond the compressed
// indexing.
func (pm *PM) Solve() {
	if pm.complexFFT || pm.rplan == nil {
		pm.solveComplex()
		return
	}
	pm.rplan.Forward(pm.Rho, pm.spec)
	pm.pool.Run(pm.n, pm.taskConv)
	pm.rplan.Inverse(pm.spec, pm.Phi)
}

// convRows multiplies half-spectrum rows jx ∈ [lo, hi) by the Green table;
// rows are disjoint, so the parallel convolution is bit-identical to serial.
func (pm *PM) convRows(w, lo, hi int) {
	n, nh := pm.n, pm.n/2+1
	for jx := lo; jx < hi; jx++ {
		for jy := 0; jy < n; jy++ {
			base := (jx*n + jy) * nh
			row := pm.green.Row(jx, jy)
			for jz := 0; jz < nh; jz++ {
				pm.spec[base+jz] *= complex(row[jz], 0)
			}
		}
	}
}

// convRowsComplex is the full-spectrum counterpart for the complex path.
func (pm *PM) convRowsComplex(w, lo, hi int) {
	n := pm.n
	for jx := lo; jx < hi; jx++ {
		for jy := 0; jy < n; jy++ {
			base := (jx*n + jy) * n
			for jz := 0; jz < n; jz++ {
				pm.work[base+jz] *= complex(pm.greenAt(jx, jy, jz), 0)
			}
		}
	}
}

// solveComplex is the full complex-to-complex reference path (WithComplexFFT,
// and the n == 1 degenerate mesh).
func (pm *PM) solveComplex() {
	pm.ensureWork()
	for i, r := range pm.Rho {
		pm.work[i] = complex(r, 0)
	}
	pm.plan.Forward(pm.work)
	pm.pool.Run(pm.n, pm.taskConvC)
	pm.plan.Inverse(pm.work)
	for i := range pm.Phi {
		pm.Phi[i] = real(pm.work[i])
	}
}

// DiffForce computes accelerations on the mesh from the potential with the
// four-point finite difference
//
//	f = −dφ/dx ≈ −[8(φ(i+1) − φ(i−1)) − (φ(i+2) − φ(i−2))] / (12h)
//
// (paper §II-B step 5, first half).
func (pm *PM) DiffForce() {
	pm.pool.Run(pm.n, pm.taskDiff)
}

// diffRows computes the finite-difference accelerations for x-planes
// ix ∈ [lo, hi); every cell is written by exactly one worker.
func (pm *PM) diffRows(w, lo, hi int) {
	n := pm.n
	c := 1 / (12 * pm.h)
	for ix := lo; ix < hi; ix++ {
		xp1, xm1 := pm.wrapIdx(ix+1), pm.wrapIdx(ix-1)
		xp2, xm2 := pm.wrapIdx(ix+2), pm.wrapIdx(ix-2)
		for iy := 0; iy < n; iy++ {
			yp1, ym1 := pm.wrapIdx(iy+1), pm.wrapIdx(iy-1)
			yp2, ym2 := pm.wrapIdx(iy+2), pm.wrapIdx(iy-2)
			for iz := 0; iz < n; iz++ {
				zp1, zm1 := pm.wrapIdx(iz+1), pm.wrapIdx(iz-1)
				zp2, zm2 := pm.wrapIdx(iz+2), pm.wrapIdx(iz-2)
				i := pm.idx(ix, iy, iz)
				pm.Fx[i] = -c * (8*(pm.Phi[pm.idx(xp1, iy, iz)]-pm.Phi[pm.idx(xm1, iy, iz)]) -
					(pm.Phi[pm.idx(xp2, iy, iz)] - pm.Phi[pm.idx(xm2, iy, iz)]))
				pm.Fy[i] = -c * (8*(pm.Phi[pm.idx(ix, yp1, iz)]-pm.Phi[pm.idx(ix, ym1, iz)]) -
					(pm.Phi[pm.idx(ix, yp2, iz)] - pm.Phi[pm.idx(ix, ym2, iz)]))
				pm.Fz[i] = -c * (8*(pm.Phi[pm.idx(ix, iy, zp1)]-pm.Phi[pm.idx(ix, iy, zm1)]) -
					(pm.Phi[pm.idx(ix, iy, zp2)] - pm.Phi[pm.idx(ix, iy, zm2)]))
			}
		}
	}
}

// InterpolateTSC adds the mesh accelerations, TSC-interpolated at each
// particle position, into (ax, ay, az) (paper §II-B step 5, second half).
func (pm *PM) InterpolateTSC(x, y, z []float64, ax, ay, az []float64) {
	pm.tx, pm.ty, pm.tz = x, y, z
	pm.tax, pm.tay, pm.taz = ax, ay, az
	pm.pool.Run(len(x), pm.taskInterp)
	pm.tx, pm.ty, pm.tz = nil, nil, nil
	pm.tax, pm.tay, pm.taz = nil, nil, nil
}

// interpRange interpolates forces for particles [lo, hi); each particle's
// accumulators are written by exactly one worker.
func (pm *PM) interpRange(w, lo, hi int) {
	sup := pm.support()
	for p := lo; p < hi; p++ {
		ix, wx := pm.tsc(pm.tx[p])
		iy, wy := pm.tsc(pm.ty[p])
		iz, wz := pm.tsc(pm.tz[p])
		var fx, fy, fz float64
		for a := 0; a < sup; a++ {
			ia := pm.wrapIdx(ix + a)
			for b := 0; b < sup; b++ {
				ib := pm.wrapIdx(iy + b)
				wab := wx[a] * wy[b]
				rowBase := (ia*pm.n + ib) * pm.n
				for c := 0; c < sup; c++ {
					ic := pm.wrapIdx(iz + c)
					wc := wab * wz[c]
					fx += wc * pm.Fx[rowBase+ic]
					fy += wc * pm.Fy[rowBase+ic]
					fz += wc * pm.Fz[rowBase+ic]
				}
			}
		}
		pm.tax[p] += fx
		pm.tay[p] += fy
		pm.taz[p] += fz
	}
}

// InterpolatePot returns the TSC-interpolated long-range potential at the
// given positions (a diagnostic for energy bookkeeping).
func (pm *PM) InterpolatePot(x, y, z []float64, pot []float64) {
	pm.tx, pm.ty, pm.tz, pm.tpot = x, y, z, pot
	pm.pool.Run(len(x), pm.taskPot)
	pm.tx, pm.ty, pm.tz, pm.tpot = nil, nil, nil, nil
}

// potRange interpolates the potential for particles [lo, hi).
func (pm *PM) potRange(w, lo, hi int) {
	sup := pm.support()
	for p := lo; p < hi; p++ {
		ix, wx := pm.tsc(pm.tx[p])
		iy, wy := pm.tsc(pm.ty[p])
		iz, wz := pm.tsc(pm.tz[p])
		var s float64
		for a := 0; a < sup; a++ {
			ia := pm.wrapIdx(ix + a)
			for b := 0; b < sup; b++ {
				ib := pm.wrapIdx(iy + b)
				wab := wx[a] * wy[b]
				rowBase := (ia*pm.n + ib) * pm.n
				for c := 0; c < sup; c++ {
					ic := pm.wrapIdx(iz + c)
					s += wab * wz[c] * pm.Phi[rowBase+ic]
				}
			}
		}
		pm.tpot[p] += s
	}
}

// SolveSpectral computes the potential and the three acceleration meshes by
// k-space differentiation (see WithSpectralDifferentiation).
func (pm *PM) SolveSpectral() {
	n := pm.n
	pm.ensureWork()
	for i, r := range pm.Rho {
		pm.work[i] = complex(r, 0)
	}
	pm.plan.Forward(pm.work)
	if pm.phiHat == nil {
		size := len(pm.work)
		pm.phiHat = make([]complex128, size)
		pm.fxHat = make([]complex128, size)
		pm.fyHat = make([]complex128, size)
		pm.fzHat = make([]complex128, size)
	}
	phiHat, fxHat, fyHat, fzHat := pm.phiHat, pm.fxHat, pm.fyHat, pm.fzHat
	twoPiL := 2 * math.Pi / pm.l
	for jx := 0; jx < n; jx++ {
		kx := twoPiL * float64(foldMode(jx, n))
		for jy := 0; jy < n; jy++ {
			ky := twoPiL * float64(foldMode(jy, n))
			base := (jx*n + jy) * n
			for jz := 0; jz < n; jz++ {
				kz := twoPiL * float64(foldMode(jz, n))
				ph := pm.work[base+jz] * complex(pm.greenAt(jx, jy, jz), 0)
				phiHat[base+jz] = ph
				// f = −∇φ ⇒ f̂ = −ik·φ̂.
				fxHat[base+jz] = complex(0, -kx) * ph
				fyHat[base+jz] = complex(0, -ky) * ph
				fzHat[base+jz] = complex(0, -kz) * ph
			}
		}
	}
	pm.plan.Inverse(phiHat)
	pm.plan.Inverse(fxHat)
	pm.plan.Inverse(fyHat)
	pm.plan.Inverse(fzHat)
	for i := range pm.Phi {
		pm.Phi[i] = real(phiHat[i])
		pm.Fx[i] = real(fxHat[i])
		pm.Fy[i] = real(fyHat[i])
		pm.Fz[i] = real(fzHat[i])
	}
}

// Accel runs the full PM pipeline — clear, assign, solve, difference,
// interpolate — adding long-range accelerations into (ax, ay, az).
func (pm *PM) Accel(x, y, z, m []float64, ax, ay, az []float64) {
	pm.Clear()
	pm.AssignTSC(x, y, z, m)
	if pm.spectral {
		pm.SolveSpectral()
	} else {
		pm.Solve()
		pm.DiffForce()
	}
	pm.InterpolateTSC(x, y, z, ax, ay, az)
}
