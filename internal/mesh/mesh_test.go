package mesh

import (
	"math"
	"math/rand"
	"testing"

	"greem/internal/direct"
	"greem/internal/ewald"
	"greem/internal/ppkern"
	"greem/internal/vec"
)

func TestS2HatLimits(t *testing.T) {
	if s := S2Hat(0); s != 1 {
		t.Errorf("S2Hat(0) = %v, want 1", s)
	}
	// Continuity across the Taylor/exact switch at u = 0.5.
	lo, hi := S2Hat(0.5-1e-9), S2Hat(0.5+1e-9)
	if math.Abs(lo-hi) > 1e-8 {
		t.Errorf("S2Hat discontinuous at switch: %v vs %v", lo, hi)
	}
	// Decay: at large u the envelope falls like 12/u^3.
	if s := S2Hat(100); math.Abs(s) > 24.0/(100*100*100)*2 {
		t.Errorf("S2Hat(100) = %v, decays too slowly", s)
	}
}

func TestKGreenZeroMode(t *testing.T) {
	if g := KGreen(0, 0, 0, 16, 1, 1, 0.1, true); g != 0 {
		t.Errorf("k=0 mode = %v, want 0", g)
	}
}

func TestKGreenSymmetry(t *testing.T) {
	// G̃ must be symmetric under j → n−j (reality of the potential) and
	// under axis permutations.
	n := 16
	for _, j := range [][3]int{{1, 2, 3}, {5, 0, 7}, {3, 3, 1}} {
		a := KGreen(j[0], j[1], j[2], n, 1, 1, 0.1, true)
		b := KGreen((n-j[0])%n, (n-j[1])%n, (n-j[2])%n, n, 1, 1, 0.1, true)
		if math.Abs(a-b) > 1e-15*math.Abs(a) {
			t.Errorf("conjugate-mode asymmetry at %v: %v vs %v", j, a, b)
		}
		c := KGreen(j[2], j[0], j[1], n, 1, 1, 0.1, true)
		if math.Abs(a-c) > 1e-15*math.Abs(a) {
			t.Errorf("permutation asymmetry at %v: %v vs %v", j, a, c)
		}
	}
}

func TestKGreenNegativeAndSuppressed(t *testing.T) {
	// All nonzero modes are negative (attractive) and high-k modes are
	// strongly suppressed by S̃2².
	n := 64
	low := KGreen(1, 0, 0, n, 1, 1, 3.0/float64(n), true)
	if low >= 0 {
		t.Errorf("low-k Green %v, want < 0", low)
	}
	hi := KGreen(n/2, n/2, n/2, n, 1, 1, 3.0/float64(n), true)
	if math.Abs(hi) > 1e-3*math.Abs(low) {
		t.Errorf("high-k mode not suppressed: %v vs low %v", hi, low)
	}
}

func TestTSCWeightsPartitionOfUnity(t *testing.T) {
	pm, err := New(16, 1, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 0.013, 0.031249, 0.03125, 0.5, 0.999} {
		_, w := pm.tsc(x)
		s := w[0] + w[1] + w[2]
		if math.Abs(s-1) > 1e-14 {
			t.Errorf("TSC weights at x=%v sum to %v", x, s)
		}
		for _, wi := range w {
			if wi < -1e-15 || wi > 0.75+1e-15 {
				t.Errorf("TSC weight out of range at x=%v: %v", x, w)
			}
		}
	}
}

func TestAssignConservesMass(t *testing.T) {
	pm, _ := New(16, 1, 1, 0.1)
	rng := rand.New(rand.NewSource(1))
	n := 100
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	m := make([]float64, n)
	var totM float64
	for i := range x {
		x[i], y[i], z[i] = rng.Float64(), rng.Float64(), rng.Float64()
		m[i] = rng.Float64() + 0.1
		totM += m[i]
	}
	pm.Clear()
	pm.AssignTSC(x, y, z, m)
	var sum float64
	for _, r := range pm.Rho {
		sum += r
	}
	h := pm.CellSize()
	sum *= h * h * h
	if math.Abs(sum-totM)/totM > 1e-12 {
		t.Errorf("assigned mass %v, want %v", sum, totM)
	}
}

func TestPMSelfForceVanishes(t *testing.T) {
	// A single particle must feel (almost) no force from its own mesh image:
	// the TSC assign/interpolate pair with central differencing is
	// antisymmetric.
	pm, _ := New(32, 1, 1, 3.0/32)
	x := []float64{0.37}
	y := []float64{0.61}
	z := []float64{0.13}
	m := []float64{1}
	ax := make([]float64, 1)
	ay := make([]float64, 1)
	az := make([]float64, 1)
	pm.Accel(x, y, z, m, ax, ay, az)
	// Scale: the typical PM pair force at r = rcut/2 would be ~1/r² ≈ 450.
	if math.Abs(ax[0]) > 1e-8 || math.Abs(ay[0]) > 1e-8 || math.Abs(az[0]) > 1e-8 {
		t.Errorf("self-force = (%v, %v, %v)", ax[0], ay[0], az[0])
	}
}

func TestPMMomentumConservation(t *testing.T) {
	pm, _ := New(32, 1, 1, 3.0/32)
	rng := rand.New(rand.NewSource(2))
	n := 50
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	m := make([]float64, n)
	for i := range x {
		x[i], y[i], z[i], m[i] = rng.Float64(), rng.Float64(), rng.Float64(), 1
	}
	ax := make([]float64, n)
	ay := make([]float64, n)
	az := make([]float64, n)
	pm.Accel(x, y, z, m, ax, ay, az)
	var px, py, pz, scale float64
	for i := range x {
		px += m[i] * ax[i]
		py += m[i] * ay[i]
		pz += m[i] * az[i]
		scale += m[i] * (math.Abs(ax[i]) + math.Abs(ay[i]) + math.Abs(az[i]))
	}
	if scale == 0 {
		t.Fatal("no forces computed")
	}
	if math.Abs(px)+math.Abs(py)+math.Abs(pz) > 1e-8*scale {
		t.Errorf("net momentum (%v,%v,%v), scale %v", px, py, pz, scale)
	}
}

func TestPMPairForceMatchesLongRangeFraction(t *testing.T) {
	// For two particles at separation r, PP(g) + PM must reproduce the exact
	// Ewald pair force. At the paper's operating point rcut = 3 mesh cells
	// the residual mesh-scale error near r ≈ rcut is a few percent of the
	// total (TSC aliasing + 4-point differencing); it falls off steeply at
	// larger separations. Tolerances encode that error budget (measured
	// worst cases ~8%, 8%, 1.3%, 0.5%, 0.03%).
	nmesh := 64
	l := 1.0
	rcut := 3.0 / float64(nmesh) * l
	pm, _ := New(nmesh, l, 1, rcut)
	ew := ewald.New(l, 1)

	cases := []struct{ frac, relTol float64 }{
		{0.5, 0.12}, {0.8, 0.12}, {1.2, 0.05}, {2, 0.02}, {4, 0.005},
	}
	for _, c := range cases {
		r := c.frac * rcut
		x := []float64{0.5 - r/2, 0.5 + r/2}
		y := []float64{0.5, 0.5}
		z := []float64{0.5, 0.5}
		m := []float64{1, 1}
		ax := make([]float64, 2)
		ay := make([]float64, 2)
		az := make([]float64, 2)
		pm.Accel(x, y, z, m, ax, ay, az)
		exact := ew.PairAccel(vec.V3{X: r}).X
		short := ppkern.GP3M(2*r/rcut) / (r * r)
		total := ax[0] + short
		if rel := math.Abs(total-exact) / exact; rel > c.relTol {
			t.Errorf("r=%.2f·rcut: PP+PM %v vs Ewald %v (rel err %.4f > %v)",
				c.frac, total, exact, rel, c.relTol)
		}
	}
}

func TestPMConvergesWithMeshRefinement(t *testing.T) {
	// With rcut held fixed in physical units, refining the mesh must drive
	// the PP+PM vs Ewald error to zero rapidly: this isolates mesh
	// discretization from the force split and proves the Green's function is
	// exactly the complement of eq. 3. Measured: 2.0e-2 → 1.7e-3 → 1.1e-4.
	l := 1.0
	rcut := 3.0 / 16
	ew := ewald.New(l, 1)
	rng := rand.New(rand.NewSource(3))
	n := 24
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	m := make([]float64, n)
	for i := range x {
		x[i], y[i], z[i], m[i] = rng.Float64(), rng.Float64(), rng.Float64(), 1.0
	}
	rx := make([]float64, n)
	ry := make([]float64, n)
	rz := make([]float64, n)
	ew.Accel(x, y, z, m, rx, ry, rz)
	rms := func(nmesh int) float64 {
		pm, _ := New(nmesh, l, 1, rcut)
		ax := make([]float64, n)
		ay := make([]float64, n)
		az := make([]float64, n)
		pm.Accel(x, y, z, m, ax, ay, az)
		direct.AccelCutoff(x, y, z, m, 1, l, rcut, 0, ax, ay, az)
		var e2, r2 float64
		for i := 0; i < n; i++ {
			dx := ax[i] - rx[i]
			dy := ay[i] - ry[i]
			dz := az[i] - rz[i]
			e2 += dx*dx + dy*dy + dz*dz
			r2 += rx[i]*rx[i] + ry[i]*ry[i] + rz[i]*rz[i]
		}
		return math.Sqrt(e2 / r2)
	}
	e16, e32, e64 := rms(16), rms(32), rms(64)
	t.Logf("RMS error: n=16 %.2e, n=32 %.2e, n=64 %.2e", e16, e32, e64)
	if e32 > e16/3 || e64 > e32/3 {
		t.Errorf("no convergence: %v, %v, %v", e16, e32, e64)
	}
	if e64 > 1e-3 {
		t.Errorf("converged error %v too large", e64)
	}
}

func TestTreePMTotalMatchesEwald(t *testing.T) {
	// The headline invariant: short-range direct cutoff + PM long-range must
	// reproduce the exact Ewald force. The paper's operating point
	// N_PM = N/2³..N/4³ with rcut = 3·L/N_PM^(1/3) gives RMS errors well
	// below a percent.
	nmesh := 32
	l := 1.0
	rcut := 3.0 * l / float64(nmesh)
	pm, _ := New(nmesh, l, 1, rcut)
	ew := ewald.New(l, 1)
	rng := rand.New(rand.NewSource(3))
	n := 24
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	m := make([]float64, n)
	for i := range x {
		x[i], y[i], z[i], m[i] = rng.Float64(), rng.Float64(), rng.Float64(), 1.0
	}
	ax := make([]float64, n)
	ay := make([]float64, n)
	az := make([]float64, n)
	pm.Accel(x, y, z, m, ax, ay, az)
	direct.AccelCutoff(x, y, z, m, 1, l, rcut, 0, ax, ay, az)

	rx := make([]float64, n)
	ry := make([]float64, n)
	rz := make([]float64, n)
	ew.Accel(x, y, z, m, rx, ry, rz)

	var sumErr2, sumRef2 float64
	for i := 0; i < n; i++ {
		dx := ax[i] - rx[i]
		dy := ay[i] - ry[i]
		dz := az[i] - rz[i]
		sumErr2 += dx*dx + dy*dy + dz*dz
		sumRef2 += rx[i]*rx[i] + ry[i]*ry[i] + rz[i]*rz[i]
	}
	rms := math.Sqrt(sumErr2 / sumRef2)
	// At rcut = 3 mesh cells the mesh-scale discretization error for a
	// sparse random configuration (where nearly all of the force is
	// long-range) is ~6% RMS with 4-point differencing (measured 5.8e-2).
	if rms > 0.10 {
		t.Errorf("TreePM vs Ewald RMS force error %v, want < 10%%", rms)
	}
	t.Logf("RMS force error vs Ewald: %.3e", rms)

	// Spectral differentiation (ablation) must do better (measured 1.9e-2).
	pmSpec, _ := New(nmesh, l, 1, rcut, WithSpectralDifferentiation())
	for i := range ax {
		ax[i], ay[i], az[i] = 0, 0, 0
	}
	pmSpec.Accel(x, y, z, m, ax, ay, az)
	direct.AccelCutoff(x, y, z, m, 1, l, rcut, 0, ax, ay, az)
	sumErr2 = 0
	for i := 0; i < n; i++ {
		dx := ax[i] - rx[i]
		dy := ay[i] - ry[i]
		dz := az[i] - rz[i]
		sumErr2 += dx*dx + dy*dy + dz*dz
	}
	rmsSpec := math.Sqrt(sumErr2 / sumRef2)
	t.Logf("RMS force error (spectral) vs Ewald: %.3e", rmsSpec)
	if rmsSpec > 0.04 {
		t.Errorf("spectral TreePM RMS error %v, want < 4%%", rmsSpec)
	}
}

func TestDeconvolutionImprovesAccuracy(t *testing.T) {
	// Ablation: switching the TSC window deconvolution off must not improve
	// the pair-force accuracy (it systematically weakens mid-k forces).
	nmesh := 32
	l := 1.0
	rcut := 3.0 * l / float64(nmesh)
	ew := ewald.New(l, 1)
	rng := rand.New(rand.NewSource(4))
	n := 16
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	m := make([]float64, n)
	for i := range x {
		x[i], y[i], z[i], m[i] = rng.Float64(), rng.Float64(), rng.Float64(), 1.0
	}
	rx := make([]float64, n)
	ry := make([]float64, n)
	rz := make([]float64, n)
	ew.Accel(x, y, z, m, rx, ry, rz)

	rms := func(opts ...Option) float64 {
		pm, _ := New(nmesh, l, 1, rcut, opts...)
		ax := make([]float64, n)
		ay := make([]float64, n)
		az := make([]float64, n)
		pm.Accel(x, y, z, m, ax, ay, az)
		direct.AccelCutoff(x, y, z, m, 1, l, rcut, 0, ax, ay, az)
		var e2, r2 float64
		for i := 0; i < n; i++ {
			dx := ax[i] - rx[i]
			dy := ay[i] - ry[i]
			dz := az[i] - rz[i]
			e2 += dx*dx + dy*dy + dz*dz
			r2 += rx[i]*rx[i] + ry[i]*ry[i] + rz[i]*rz[i]
		}
		return math.Sqrt(e2 / r2)
	}
	with := rms()
	without := rms(WithoutDeconvolution())
	t.Logf("RMS error with deconvolution %.3e, without %.3e", with, without)
	if with > without*1.5 {
		t.Errorf("deconvolution made things much worse: %v vs %v", with, without)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(12, 1, 1, 0.1); err == nil {
		t.Error("non-power-of-two mesh accepted")
	}
	if _, err := New(16, -1, 1, 0.1); err == nil {
		t.Error("negative box accepted")
	}
	if _, err := New(16, 1, 1, 0); err == nil {
		t.Error("zero rcut accepted")
	}
}

func TestCICMassConservationAndWeights(t *testing.T) {
	pm, _ := New(16, 1, 1, 0.1, WithCIC())
	// Weights sum to one everywhere.
	for _, x := range []float64{0, 0.013, 0.031249, 0.5, 0.999} {
		_, w := pm.tsc(x)
		if math.Abs(w[0]+w[1]+w[2]-1) > 1e-14 {
			t.Errorf("CIC weights at %v sum to %v", x, w[0]+w[1]+w[2])
		}
		if w[2] != 0 {
			t.Errorf("CIC third weight nonzero at %v", x)
		}
	}
	rng := rand.New(rand.NewSource(1))
	n := 50
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	m := make([]float64, n)
	var tot float64
	for i := range x {
		x[i], y[i], z[i], m[i] = rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()
		tot += m[i]
	}
	pm.Clear()
	pm.AssignTSC(x, y, z, m)
	var sum float64
	for _, r := range pm.Rho {
		sum += r
	}
	h := pm.CellSize()
	if math.Abs(sum*h*h*h-tot)/tot > 1e-12 {
		t.Errorf("CIC mass %v, want %v", sum*h*h*h, tot)
	}
}

func TestCICAblationVsTSC(t *testing.T) {
	// TSC (the paper's choice) must be at least as accurate as CIC at the
	// operating point; both must land in the same error regime.
	nmesh := 32
	l := 1.0
	rcut := 3.0 / float64(nmesh)
	ew := ewald.New(l, 1)
	rng := rand.New(rand.NewSource(7))
	n := 20
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	m := make([]float64, n)
	for i := range x {
		x[i], y[i], z[i], m[i] = rng.Float64(), rng.Float64(), rng.Float64(), 1.0
	}
	rx := make([]float64, n)
	ry := make([]float64, n)
	rz := make([]float64, n)
	ew.Accel(x, y, z, m, rx, ry, rz)
	rms := func(opts ...Option) float64 {
		pm, _ := New(nmesh, l, 1, rcut, opts...)
		ax := make([]float64, n)
		ay := make([]float64, n)
		az := make([]float64, n)
		pm.Accel(x, y, z, m, ax, ay, az)
		direct.AccelCutoff(x, y, z, m, 1, l, rcut, 0, ax, ay, az)
		var e2, r2 float64
		for i := 0; i < n; i++ {
			dx := ax[i] - rx[i]
			dy := ay[i] - ry[i]
			dz := az[i] - rz[i]
			e2 += dx*dx + dy*dy + dz*dz
			r2 += rx[i]*rx[i] + ry[i]*ry[i] + rz[i]*rz[i]
		}
		return math.Sqrt(e2 / r2)
	}
	tsc := rms()
	cic := rms(WithCIC())
	t.Logf("RMS force error: TSC %.3e, CIC %.3e", tsc, cic)
	if cic > 10*tsc {
		t.Errorf("CIC error implausibly large: %v vs TSC %v", cic, tsc)
	}
	if tsc > 2*cic {
		t.Errorf("TSC (%v) should not be clearly worse than CIC (%v)", tsc, cic)
	}
}
