package mesh

import "sync"

// GreenTab is a precomputed Green's-function multiplier table for an n³ mesh.
// Because the multiplier is real and even under per-axis mode folding
// (G(n−j) = G(j)), only the half-spectrum jz ∈ [0, n/2] is stored —
// n·n·(n/2+1) float64 — matching the r2c spectral layout exactly. Building
// it once replaces the per-cell sin/sinc evaluation of KGreenW inside every
// PM solve; at n=128 that is ~1.1 M transcendental-laden evaluations per
// step traded for a table lookup.
type GreenTab struct {
	n, nh int
	data  []float64 // (jx·n + jy)·(n/2+1) + jz, jz ∈ [0, n/2]
}

// NewGreenTab builds the table. Odd or degenerate sizes (n < 2) return nil:
// the folding identity jz ↦ n−jz needs an even n, so such meshes fall back
// to direct KGreenW evaluation.
func NewGreenTab(n int, l, g, rcut float64, deconvolve bool, order int) *GreenTab {
	if n < 2 || n%2 != 0 {
		return nil
	}
	nh := n/2 + 1
	t := &GreenTab{n: n, nh: nh, data: make([]float64, n*n*nh)}
	for jx := 0; jx < n; jx++ {
		for jy := 0; jy < n; jy++ {
			base := (jx*n + jy) * nh
			for jz := 0; jz < nh; jz++ {
				t.data[base+jz] = KGreenW(jx, jy, jz, n, l, g, rcut, deconvolve, order)
			}
		}
	}
	return t
}

// N returns the mesh size.
func (t *GreenTab) N() int { return t.n }

// At returns the multiplier for mode (jx, jy, jz) with jz ≤ n/2 — the
// half-spectrum index range of the r2c layout.
func (t *GreenTab) At(jx, jy, jz int) float64 {
	return t.data[(jx*t.n+jy)*t.nh+jz]
}

// Row returns the contiguous half-spectrum row for (jx, jy) — the inner-loop
// view used by the convolution kernels. The slice aliases the table; do not
// modify it.
func (t *GreenTab) Row(jx, jy int) []float64 {
	base := (jx*t.n + jy) * t.nh
	return t.data[base : base+t.nh]
}

// AtFull returns the multiplier for any full-range mode (jx, jy, jz),
// jz ∈ [0, n), folding jz > n/2 onto its mirror n−jz.
func (t *GreenTab) AtFull(jx, jy, jz int) float64 {
	if jz > t.n/2 {
		jz = t.n - jz
	}
	return t.data[(jx*t.n+jy)*t.nh+jz]
}

type greenKey struct {
	n          int
	l, g, rcut float64
	deconvolve bool
	order      int
}

var (
	greenMu    sync.Mutex
	greenCache = map[greenKey]*GreenTab{}
)

// GreenTable returns the cached table for the given parameters, building it
// on first use. Tables persist for the process lifetime, so repeated solver
// construction (every relay step rebuild, every test) pays the O(n³)
// evaluation once per parameter set. Returns nil when the size has no table
// (see NewGreenTab); callers then evaluate KGreenW directly.
func GreenTable(n int, l, g, rcut float64, deconvolve bool, order int) *GreenTab {
	k := greenKey{n: n, l: l, g: g, rcut: rcut, deconvolve: deconvolve, order: order}
	greenMu.Lock()
	defer greenMu.Unlock()
	if t, ok := greenCache[k]; ok {
		return t
	}
	t := NewGreenTab(n, l, g, rcut, deconvolve, order)
	greenCache[k] = t
	return t
}
