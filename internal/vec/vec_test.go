package vec

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAddSubScale(t *testing.T) {
	a := V3{1, 2, 3}
	b := V3{-4, 5, 0.5}
	if got := a.Add(b); got != (V3{-3, 7, 3.5}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (V3{5, -3, 2.5}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (V3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Neg(); got != (V3{-1, -2, -3}) {
		t.Errorf("Neg = %v", got)
	}
}

func TestDotCrossNorm(t *testing.T) {
	a := V3{1, 0, 0}
	b := V3{0, 1, 0}
	if a.Dot(b) != 0 {
		t.Errorf("Dot orthogonal = %v", a.Dot(b))
	}
	if got := a.Cross(b); got != (V3{0, 0, 1}) {
		t.Errorf("Cross = %v", got)
	}
	c := V3{3, 4, 0}
	if c.Norm() != 5 {
		t.Errorf("Norm = %v", c.Norm())
	}
	if c.Norm2() != 25 {
		t.Errorf("Norm2 = %v", c.Norm2())
	}
}

func TestMaxAbs(t *testing.T) {
	if got := (V3{-3, 2, 1}).MaxAbs(); got != 3 {
		t.Errorf("MaxAbs = %v", got)
	}
	if got := (V3{0.1, -0.5, 0.2}).MaxAbs(); got != 0.5 {
		t.Errorf("MaxAbs = %v", got)
	}
	if got := (V3{0, 0, -7}).MaxAbs(); got != 7 {
		t.Errorf("MaxAbs = %v", got)
	}
}

func TestWrapRange(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0.5, 0.5}, {1.5, 0.5}, {-0.25, 0.75}, {2.0, 0.0}, {-1.0, 0.0},
	}
	for _, c := range cases {
		got := Wrap(V3{c.in, c.in, c.in}, 1.0)
		if !almost(got.X, c.want, 1e-15) {
			t.Errorf("Wrap(%v) = %v, want %v", c.in, got.X, c.want)
		}
	}
}

func TestWrapAlwaysInRange(t *testing.T) {
	f := func(x, y, z float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
			return true
		}
		if math.IsNaN(y) || math.IsInf(y, 0) || math.Abs(y) > 1e12 {
			return true
		}
		if math.IsNaN(z) || math.IsInf(z, 0) || math.Abs(z) > 1e12 {
			return true
		}
		w := Wrap(V3{x, y, z}, 1.0)
		return w.X >= 0 && w.X < 1 && w.Y >= 0 && w.Y < 1 && w.Z >= 0 && w.Z < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinImage(t *testing.T) {
	l := 1.0
	a := V3{0.9, 0.9, 0.9}
	b := V3{0.1, 0.1, 0.1}
	d := MinImage(a, b, l)
	want := V3{0.2, 0.2, 0.2}
	if !almost(d.X, want.X, 1e-14) || !almost(d.Y, want.Y, 1e-14) || !almost(d.Z, want.Z, 1e-14) {
		t.Errorf("MinImage = %v, want %v", d, want)
	}
}

func TestMinImageAntisymmetric(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := Wrap(V3{clean(ax), clean(ay), clean(az)}, 1)
		b := Wrap(V3{clean(bx), clean(by), clean(bz)}, 1)
		d1 := MinImage(a, b, 1)
		d2 := MinImage(b, a, 1)
		// d1 = -d2 up to the half-box ambiguity at exactly L/2.
		return almost(d1.Norm(), d2.Norm(), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinImageComponentsHalfBox(t *testing.T) {
	f := func(ax, bx float64) bool {
		d := MinImage(V3{clean(ax), 0, 0}, V3{clean(bx), 0, 0}, 1)
		return d.X >= -0.5 && d.X < 0.5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDist2Periodic(t *testing.T) {
	got := Dist2Periodic(V3{0.95, 0, 0}, V3{0.05, 0, 0}, 1)
	if !almost(got, 0.01, 1e-14) {
		t.Errorf("Dist2Periodic = %v, want 0.01", got)
	}
}

// clean maps an arbitrary quick-generated float into something finite & modest.
func clean(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 100)
}
