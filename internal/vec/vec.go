// Package vec provides the 3-vector type and small geometric helpers used
// throughout the simulation code. Positions live in a periodic cube of side
// L, so the package also provides minimum-image displacement and wrapping.
package vec

import "math"

// V3 is a Cartesian 3-vector.
type V3 struct {
	X, Y, Z float64
}

// Add returns a + b.
func (a V3) Add(b V3) V3 { return V3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a V3) Sub(b V3) V3 { return V3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns s*a.
func (a V3) Scale(s float64) V3 { return V3{s * a.X, s * a.Y, s * a.Z} }

// Dot returns the inner product a·b.
func (a V3) Dot(b V3) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns the vector product a×b.
func (a V3) Cross(b V3) V3 {
	return V3{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}

// Norm2 returns |a|².
func (a V3) Norm2() float64 { return a.Dot(a) }

// Norm returns |a|.
func (a V3) Norm() float64 { return math.Sqrt(a.Norm2()) }

// Neg returns -a.
func (a V3) Neg() V3 { return V3{-a.X, -a.Y, -a.Z} }

// MaxAbs returns the largest absolute component.
func (a V3) MaxAbs() float64 {
	m := math.Abs(a.X)
	if v := math.Abs(a.Y); v > m {
		m = v
	}
	if v := math.Abs(a.Z); v > m {
		m = v
	}
	return m
}

// Wrap maps each component of p into [0, L).
func Wrap(p V3, l float64) V3 {
	return V3{wrap1(p.X, l), wrap1(p.Y, l), wrap1(p.Z, l)}
}

func wrap1(x, l float64) float64 {
	x = math.Mod(x, l)
	if x < 0 {
		x += l
	}
	// Mod can return exactly l for tiny negative x due to rounding.
	if x >= l {
		x -= l
	}
	return x
}

// MinImage returns the minimum-image displacement d such that a+d ≡ b in the
// periodic cube of side L, with each component in [-L/2, L/2).
func MinImage(a, b V3, l float64) V3 {
	return V3{minImage1(b.X-a.X, l), minImage1(b.Y-a.Y, l), minImage1(b.Z-a.Z, l)}
}

func minImage1(d, l float64) float64 {
	d -= l * math.Round(d/l)
	if d < -l/2 {
		d += l
	}
	if d >= l/2 {
		d -= l
	}
	return d
}

// Dist2Periodic returns the squared minimum-image distance between a and b.
func Dist2Periodic(a, b V3, l float64) float64 {
	return MinImage(a, b, l).Norm2()
}
