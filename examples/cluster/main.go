// Cluster: a self-gravitating Plummer sphere evolved with the pure tree code
// (open boundary, no PM) — the classic collisionless test, and the regime
// the pre-TreePM Gordon-Bell winners ran. Tracks energy conservation and the
// virial ratio, and demonstrates Barnes' modified algorithm (grouped
// traversal) standalone.
//
//	go run ./examples/cluster [-n 4096] [-steps 100]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"

	"greem/internal/direct"
	"greem/internal/tree"
)

func main() {
	n := flag.Int("n", 4096, "particles")
	steps := flag.Int("steps", 100, "leapfrog steps")
	flag.Parse()

	// Plummer model in virial units (G = M = 1, E = −1/4), standard
	// Aarseth-Henon-Wielen construction.
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, *n)
	y := make([]float64, *n)
	z := make([]float64, *n)
	vx := make([]float64, *n)
	vy := make([]float64, *n)
	vz := make([]float64, *n)
	m := make([]float64, *n)
	a := 3 * math.Pi / 16 // Plummer scale for virial units
	for i := 0; i < *n; i++ {
		m[i] = 1.0 / float64(*n)
		r := a / math.Sqrt(math.Pow(rng.Float64()*0.999+1e-10, -2.0/3.0)-1)
		x[i], y[i], z[i] = randDir(rng, r)
		// Velocity from the isotropic distribution function via rejection;
		// escape velocity v_e(r) = √2·(r²+a²)^(−1/4) for G = M = 1.
		ve := math.Sqrt(2) * math.Pow(r*r+a*a, -0.25)
		var q float64
		for {
			q = rng.Float64()
			g := rng.Float64() * 0.1
			if g < q*q*math.Pow(1-q*q, 3.5) {
				break
			}
		}
		vx[i], vy[i], vz[i] = randDir(rng, q*ve)
	}

	eps2 := math.Pow(0.02*a, 2)
	opt := tree.ForceOpts{G: 1, Theta: 0.5, Eps2: eps2, FastKernel: true}
	ax := make([]float64, *n)
	ay := make([]float64, *n)
	az := make([]float64, *n)
	forces := func() tree.Stats {
		tr, err := tree.Build(x, y, z, m, tree.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		for i := range ax {
			ax[i], ay[i], az[i] = 0, 0, 0
		}
		return tree.Accel(tr, tr, 100, opt, ax, ay, az)
	}
	energy := func() (kin, pot float64) {
		return direct.EnergyPlain(x, y, z, vx, vy, vz, m, 1, eps2)
	}

	k0, p0 := energy()
	e0 := k0 + p0
	fmt.Printf("Plummer sphere, N = %d: E₀ = %.4f (virial units expect −0.25), 2T/|W| = %.3f\n",
		*n, e0, 2*k0/math.Abs(p0))

	st := forces()
	dt := 0.01
	for s := 0; s < *steps; s++ {
		for i := range x {
			vx[i] += 0.5 * dt * ax[i]
			vy[i] += 0.5 * dt * ay[i]
			vz[i] += 0.5 * dt * az[i]
			x[i] += dt * vx[i]
			y[i] += dt * vy[i]
			z[i] += dt * vz[i]
		}
		st = forces()
		for i := range x {
			vx[i] += 0.5 * dt * ax[i]
			vy[i] += 0.5 * dt * ay[i]
			vz[i] += 0.5 * dt * az[i]
		}
		if (s+1)%20 == 0 {
			k, p := energy()
			fmt.Printf("t = %5.2f: E = %.4f (drift %+.2e), 2T/|W| = %.3f, ⟨Ni⟩ = %.0f, ⟨Nj⟩ = %.0f\n",
				float64(s+1)*dt, k+p, (k+p-e0)/math.Abs(e0), 2*k/math.Abs(p), st.MeanNi(), st.MeanNj())
		}
	}
	k1, p1 := energy()
	fmt.Printf("final energy drift: %.2e over %d steps\n", (k1+p1-e0)/math.Abs(e0), *steps)
}

func randDir(rng *rand.Rand, r float64) (float64, float64, float64) {
	ct := 2*rng.Float64() - 1
	st := math.Sqrt(1 - ct*ct)
	ph := 2 * math.Pi * rng.Float64()
	return r * st * math.Cos(ph), r * st * math.Sin(ph), r * ct
}
