// Quickstart: compute TreePM forces for a small periodic system, compare
// them against exact Ewald summation, and advance a few leapfrog steps.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"greem"
)

func main() {
	const (
		n = 256
		l = 1.0
		g = 1.0
	)
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	m := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i], y[i], z[i] = rng.Float64(), rng.Float64(), rng.Float64()
		m[i] = 1.0 / n
	}

	// The TreePM solver: tree below rcut = 3 mesh cells, PM above.
	solver, err := greem.NewTreePM(greem.TreePMConfig{
		L: l, G: g, NMesh: 32, Theta: 0.5, Ni: 100, Eps2: 1e-8, FastKernel: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	ax := make([]float64, n)
	ay := make([]float64, n)
	az := make([]float64, n)
	stats, err := solver.Accel(x, y, z, m, ax, ay, az)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TreePM force evaluation over %d particles:\n", n)
	fmt.Printf("  tree groups %d, ⟨Ni⟩ = %.1f, ⟨Nj⟩ = %.1f, %d pairwise interactions\n",
		stats.Tree.Groups, stats.Tree.MeanNi(), stats.Tree.MeanNj(), stats.Tree.Interactions)
	fmt.Printf("  tree build %v, traversal+kernel %v, PM %v\n",
		stats.TreeBuild, stats.TreeTraverse, stats.PMTime)

	// Accuracy against exact Ewald summation.
	ew := greem.NewEwald(l, g)
	rx := make([]float64, n)
	ry := make([]float64, n)
	rz := make([]float64, n)
	ew.Accel(x, y, z, m, rx, ry, rz)
	var e2, r2 float64
	for i := 0; i < n; i++ {
		dx, dy, dz := ax[i]-rx[i], ay[i]-ry[i], az[i]-rz[i]
		e2 += dx*dx + dy*dy + dz*dz
		r2 += rx[i]*rx[i] + ry[i]*ry[i] + rz[i]*rz[i]
	}
	fmt.Printf("  RMS force error vs Ewald: %.2e\n", math.Sqrt(e2/r2))

	// A few KDK leapfrog steps with the same solver.
	vx := make([]float64, n)
	vy := make([]float64, n)
	vz := make([]float64, n)
	const dt = 0.005
	for step := 0; step < 5; step++ {
		for i := 0; i < n; i++ {
			vx[i] += 0.5 * dt * ax[i]
			vy[i] += 0.5 * dt * ay[i]
			vz[i] += 0.5 * dt * az[i]
			x[i] = wrap(x[i]+dt*vx[i], l)
			y[i] = wrap(y[i]+dt*vy[i], l)
			z[i] = wrap(z[i]+dt*vz[i], l)
			ax[i], ay[i], az[i] = 0, 0, 0
		}
		if _, err := solver.Accel(x, y, z, m, ax, ay, az); err != nil {
			log.Fatal(err)
		}
		for i := 0; i < n; i++ {
			vx[i] += 0.5 * dt * ax[i]
			vy[i] += 0.5 * dt * ay[i]
			vz[i] += 0.5 * dt * az[i]
		}
	}
	var kin float64
	for i := 0; i < n; i++ {
		kin += 0.5 * m[i] * (vx[i]*vx[i] + vy[i]*vy[i] + vz[i]*vz[i])
	}
	fmt.Printf("after 5 leapfrog steps: kinetic energy %.3e\n", kin)
}

func wrap(v, l float64) float64 {
	v = math.Mod(v, l)
	if v < 0 {
		v += l
	}
	return v
}
