// Cosmology: a scaled-down version of the paper's §III run — dark matter
// particles with a neutralino free-streaming cutoff in the initial power
// spectrum, integrated in comoving coordinates from redshift 400 toward 31
// on multiple goroutine "ranks", with projected-density snapshots (the
// paper's Fig. 6) and diagnostics written along the way.
//
//	go run ./examples/cosmology [-np 16] [-steps 48] [-ranks 4] [-out out]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"greem"
	"greem/internal/analysis"
	"greem/internal/cosmo"
	"greem/internal/sim"
)

func main() {
	np := flag.Int("np", 16, "particles per dimension")
	steps := flag.Int("steps", 48, "full (PM) steps")
	ranks := flag.Int("ranks", 4, "goroutine ranks (must factor into the grid)")
	outDir := flag.String("out", "out", "output directory")
	flag.Parse()

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	const (
		l = 1.0 // comoving box (the paper's box is 600 pc; units are ours)
		g = 1.0
	)
	totalM := 1.0
	h0 := greem.HubbleForBox(g, totalM, l, 1.0)
	model := cosmo.EdS(h0) // matter-dominated at z ≥ 31, as in the paper's epoch

	aStart := greem.ScaleFactor(400)
	aEnd := greem.ScaleFactor(31)

	// Initial spectrum: structure only near the free-streaming cutoff.
	nmesh := nextPow2(2 * *np)
	ps := greem.NeutralinoCutoff{N: 0, Amp: 5e-5, KCut: 2 * math.Pi / l * float64(*np) / 4}
	parts, err := greem.GenerateIC(greem.ICConfig{
		NP: *np, NGrid: nmesh, L: l, PS: ps, Seed: 12345,
		Model: model, AInit: aStart, TotalMass: totalM,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial conditions: %d particles, a = %.5f (z = %.0f)\n",
		len(parts), aStart, greem.Redshift(aStart))

	grid, err := factorGrid(*ranks)
	if err != nil {
		log.Fatal(err)
	}
	cfg := greem.SimConfig{
		L: l, G: g,
		NMesh: nmesh, Theta: 0.5, Ni: 64, Eps2: 1e-8, FastKernel: true,
		Grid: grid, DT: (aEnd - aStart) / float64(*steps),
		Stepper: model, Time: aStart,
	}

	snapshots := []float64{greem.ScaleFactor(400), greem.ScaleFactor(70), greem.ScaleFactor(40), greem.ScaleFactor(31)}
	err = greem.Run(*ranks, func(c *greem.Comm) {
		var mine []greem.Particle
		for i, p := range parts {
			if i%*ranks == c.Rank() {
				mine = append(mine, p)
			}
		}
		s, err := greem.NewSimulation(c, cfg, mine)
		if err != nil {
			panic(err)
		}
		next := 0
		dump := func() {
			if next >= len(snapshots) || s.Time() < snapshots[next]-1e-12 {
				return
			}
			all := s.GatherAll(0)
			if c.Rank() == 0 {
				writeSnapshot(*outDir, s, all, l)
			}
			next++
		}
		dump()
		for i := 0; i < *steps; i++ {
			if err := s.Step(); err != nil {
				panic(err)
			}
			dump()
			if c.Rank() == 0 && (i+1)%8 == 0 {
				fmt.Printf("step %3d: a = %.5f (z = %.1f), local particles %d\n",
					i+1, s.Time(), greem.Redshift(s.Time()), s.NumLocal())
			}
		}
		// Final diagnostics (MeanNiNj is collective; print at rank 0).
		all := s.GatherAll(0)
		ni, nj := s.MeanNiNj()
		if c.Rank() == 0 {
			finalDiagnostics(*outDir, all, l)
			fmt.Printf("tree statistics: ⟨Ni⟩ = %.1f, ⟨Nj⟩ = %.1f\n", ni, nj)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}

func writeSnapshot(dir string, s *sim.Sim, all []greem.Particle, l float64) {
	z := greem.Redshift(s.Time())
	x := make([]float64, len(all))
	y := make([]float64, len(all))
	m := make([]float64, len(all))
	for i, p := range all {
		x[i], y[i], m[i] = p.X, p.Y, p.M
	}
	img := analysis.ProjectXY(x, y, m, 256, l)
	name := filepath.Join(dir, fmt.Sprintf("density_z%04.0f.pgm", z))
	f, err := os.Create(name)
	if err != nil {
		log.Fatal(err)
	}
	if err := analysis.WritePGM(f, img); err != nil {
		log.Fatal(err)
	}
	f.Close()
	snap := filepath.Join(dir, fmt.Sprintf("snap_z%04.0f.bin", z))
	if err := greem.SaveSnapshot(snap, l, s.Time(), 1, uint64(s.StepIndex()), all); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s and %s (z = %.1f)\n", name, snap, z)
}

func finalDiagnostics(dir string, all []greem.Particle, l float64) {
	x := make([]float64, len(all))
	y := make([]float64, len(all))
	z := make([]float64, len(all))
	m := make([]float64, len(all))
	for i, p := range all {
		x[i], y[i], z[i], m[i] = p.X, p.Y, p.Z, p.M
	}
	ks, pk, _, err := greem.MeasurePowerSpectrum(x, y, z, m, 32, l, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("final power spectrum:")
	for i := range ks {
		fmt.Printf("  k = %7.1f  P = %.3e\n", ks[i], pk[i])
	}
	// The smallest structures: FoF halos at b = 0.2 of the mean separation.
	b := 0.2 * l / math.Cbrt(float64(len(all)))
	groups := greem.FindHalos(x, y, z, l, b, 16)
	halos := greem.HaloCatalog(x, y, z, m, l, groups)
	fmt.Printf("friends-of-friends: %d halos with >=16 particles\n", len(halos))
	for i, h := range halos {
		if i >= 5 {
			break
		}
		fmt.Printf("  halo %d: N=%d, M=%.2e, center (%.3f,%.3f,%.3f), R50=%.4f\n",
			i, h.N, h.Mass, h.Center.X, h.Center.Y, h.Center.Z, h.R50)
	}
	_ = dir
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// factorGrid splits p into three near-equal factors.
func factorGrid(p int) ([3]int, error) {
	best := [3]int{}
	found := false
	for a := 1; a*a*a <= p; a++ {
		if p%a != 0 {
			continue
		}
		q := p / a
		for b := a; b*b <= q; b++ {
			if q%b != 0 {
				continue
			}
			best = [3]int{q / b, b, a}
			found = true
		}
	}
	if !found {
		return best, fmt.Errorf("cannot factor %d ranks into a grid", p)
	}
	return best, nil
}
