// Loadbalance: the paper's Fig. 3 — the sampling-method domain decomposition
// adapting an 8×8 division (2-D, as in the figure) to a clustered particle
// distribution so every domain carries the same load, versus the badly
// imbalanced static decomposition. Writes a PPM visualization of the
// boundaries over the particle field.
//
//	go run ./examples/loadbalance [-out out]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"path/filepath"

	"greem/internal/domain"
	"greem/internal/vec"
)

func main() {
	outDir := flag.String("out", "out", "output directory")
	flag.Parse()
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	// Clustered distribution: a uniform background plus dense clumps — the
	// structure cosmological gravity produces (central densities 100–1000×
	// the mean, §II).
	rng := rand.New(rand.NewSource(2))
	n := 200000
	pts := make([]vec.V3, 0, n)
	clumps := []struct{ cx, cy, s float64 }{
		{0.25, 0.7, 0.02}, {0.6, 0.3, 0.015}, {0.8, 0.8, 0.03}, {0.45, 0.55, 0.01},
	}
	for i := 0; i < n; i++ {
		switch {
		case i%3 == 0:
			pts = append(pts, vec.V3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()})
		default:
			c := clumps[i%len(clumps)]
			pts = append(pts, vec.Wrap(vec.V3{
				X: c.cx + c.s*rng.NormFloat64(),
				Y: c.cy + c.s*rng.NormFloat64(),
				Z: 0.5 + c.s*rng.NormFloat64(),
			}, 1))
		}
	}

	// 8×8×1: the figure's two-dimensional 8×8 division.
	static := domain.Uniform(8, 8, 1, 1)
	adaptive, err := domain.FromSamples(8, 8, 1, 1, append([]vec.V3(nil), pts...))
	if err != nil {
		log.Fatal(err)
	}

	impStatic := domain.Imbalance(domain.CountLoads(static, pts))
	impAdaptive := domain.Imbalance(domain.CountLoads(adaptive, pts))
	fmt.Printf("particles: %d, domains: 8×8\n", n)
	fmt.Printf("static decomposition:   max/mean load = %.2f\n", impStatic)
	fmt.Printf("adaptive decomposition: max/mean load = %.2f\n", impAdaptive)
	fmt.Printf("(high-density structures are divided into small domains so the\n" +
		" calculation costs of all processes are the same — paper Fig. 3)\n")

	for _, v := range []struct {
		geo  *domain.Geometry
		name string
	}{{static, "fig3_static.ppm"}, {adaptive, "fig3_adaptive.ppm"}} {
		path := filepath.Join(*outDir, v.name)
		if err := writePPM(path, pts, v.geo, 512); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
}

// writePPM renders the x-y particle density with domain boundaries overlaid.
func writePPM(path string, pts []vec.V3, g *domain.Geometry, size int) error {
	dens := make([][]float64, size)
	for i := range dens {
		dens[i] = make([]float64, size)
	}
	for _, p := range pts {
		i := int(p.X * float64(size))
		j := int(p.Y * float64(size))
		if i >= size {
			i = size - 1
		}
		if j >= size {
			j = size - 1
		}
		dens[i][j]++
	}
	maxD := 1.0
	for _, row := range dens {
		for _, v := range row {
			if v > maxD {
				maxD = v
			}
		}
	}
	onBoundary := func(x, y float64) bool {
		for i := 0; i <= g.Nx; i++ {
			if math.Abs(x-g.BX[min(i, g.Nx)]) < 1.5/float64(size) {
				return true
			}
		}
		i := 0
		for i < g.Nx-1 && x > g.BX[i+1] {
			i++
		}
		for j := 0; j <= g.Ny; j++ {
			if math.Abs(y-g.BY[i][min(j, g.Ny)]) < 1.5/float64(size) {
				return true
			}
		}
		return false
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "P3\n%d %d\n255\n", size, size)
	for j := size - 1; j >= 0; j-- {
		for i := 0; i < size; i++ {
			x := (float64(i) + 0.5) / float64(size)
			y := (float64(j) + 0.5) / float64(size)
			if onBoundary(x, y) {
				fmt.Fprint(f, "255 64 64 ")
				continue
			}
			v := 0
			if dens[i][j] > 0 {
				v = int(80 + 175*math.Log(1+dens[i][j])/math.Log(1+maxD))
			}
			fmt.Fprintf(f, "%d %d %d ", v, v, v)
		}
		fmt.Fprintln(f)
	}
	return nil
}
