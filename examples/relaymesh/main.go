// Relaymesh: the paper's Fig. 5 configuration — 36 processes (6×6 in 2-D),
// an 8³ PM mesh, 8 FFT processes and 4 groups of 9 — executed with both the
// naive global conversion and the relay mesh method. The run verifies the
// two produce identical potentials, then reports the recorded communication
// structure (the incast the relay method removes) and the modeled times at
// the paper's 12288-node scale.
//
//	go run ./examples/relaymesh
package main

import (
	"fmt"
	"log"
	"math/rand"

	"greem/internal/domain"
	"greem/internal/mpi"
	"greem/internal/perfmodel"
	"greem/internal/pmpar"
	"greem/internal/vec"
)

func main() {
	const (
		ranks = 36
		nmesh = 8
		nfft  = 8
		l     = 1.0
	)
	// Particles on the 6×6×1 decomposition of Fig. 5.
	rng := rand.New(rand.NewSource(1))
	n := 3600
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	m := make([]float64, n)
	for i := range x {
		x[i], y[i], z[i], m[i] = rng.Float64(), rng.Float64(), rng.Float64(), 1.0/float64(n)
	}
	geo := domain.Uniform(6, 6, 1, l)
	owner := make([][]int, ranks)
	for i := 0; i < n; i++ {
		r := geo.Find(vec.V3{X: x[i], Y: y[i], Z: z[i]})
		owner[r] = append(owner[r], i)
	}

	run := func(relay bool, groups int) ([]float64, []mpi.Op) {
		ax := make([]float64, n)
		var ops []mpi.Op
		cfg := pmpar.Config{N: nmesh, L: l, G: 1, Rcut: 3.0 / nmesh, NFFT: nfft, Relay: relay, Groups: groups}
		err := mpi.Run(ranks, func(c *mpi.Comm) {
			lo, hi := geo.Bounds(c.Rank())
			s, err := pmpar.New(c, cfg, lo, hi)
			if err != nil {
				panic(err)
			}
			c.Traffic().Reset()
			ids := owner[c.Rank()]
			lx := make([]float64, len(ids))
			ly := make([]float64, len(ids))
			lz := make([]float64, len(ids))
			lm := make([]float64, len(ids))
			for k, id := range ids {
				lx[k], ly[k], lz[k], lm[k] = x[id], y[id], z[id], m[id]
			}
			la := make([]float64, len(ids))
			lb := make([]float64, len(ids))
			lc := make([]float64, len(ids))
			s.Accel(lx, ly, lz, lm, la, lb, lc)
			c.Barrier()
			for k, id := range ids {
				ax[id] = la[k]
			}
			if c.Rank() == 0 {
				ops = c.Traffic().Ops()
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		return ax, ops
	}

	fmt.Println("Fig. 5 configuration: 36 processes (6×6), mesh 8³, 8 FFT processes, 4 groups")
	axNaive, opsNaive := run(false, 1)
	axRelay, opsRelay := run(true, 4)

	worst := 0.0
	for i := range axNaive {
		d := axNaive[i] - axRelay[i]
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	fmt.Printf("naive vs relay potential agreement: max |Δa| = %.2e (identical numerics)\n\n", worst)

	report := func(name string, ops []mpi.Op) {
		var msgs, bytes int64
		maxIncast := 0
		for _, op := range ops {
			if op.Name != "Alltoallv" {
				continue
			}
			senders := map[int]map[int]bool{}
			for _, msg := range op.Msgs {
				msgs++
				bytes += int64(msg.Bytes)
				if senders[msg.Dst] == nil {
					senders[msg.Dst] = map[int]bool{}
				}
				senders[msg.Dst][msg.Src] = true
			}
			for _, set := range senders {
				if len(set) > maxIncast {
					maxIncast = len(set)
				}
			}
		}
		fmt.Printf("%-8s Alltoallv messages %4d, bytes %8d, max senders into one process %d\n",
			name, msgs, bytes, maxIncast)
	}
	report("naive:", opsNaive)
	report("relay:", opsRelay)

	fmt.Println("\nModeled at the paper's scale (4096³ mesh, 12288 nodes, 4096 FFT processes):")
	machine := perfmodel.KComputer()
	spec := perfmodel.ConvSpec{P: 12288, Grid: [3]int{16, 32, 24}, N: 4096, NFFT: 4096, Groups: 1}
	naive := machine.MeshConversion(spec)
	spec.Groups = 3
	spec.Interleaved = true
	relay := machine.MeshConversion(spec)
	fmt.Printf("  naive:  density→slab %.1f s, slab→local %.1f s   (paper: ~10 s, ~3 s)\n",
		naive.DensityToSlab, naive.SlabToLocal)
	fmt.Printf("  relay:  density→slab %.1f s, slab→local %.1f s   (paper: ~3 s, ~0.3 s)\n",
		relay.DensityToSlab, relay.SlabToLocal)
	fmt.Printf("  communication speedup %.1f× (paper: \"more than a factor of four\")\n",
		naive.Total()/relay.Total())
}
