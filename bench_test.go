// Benchmarks regenerating the paper's tables and figures, one per exhibit
// (see DESIGN.md's experiment index and EXPERIMENTS.md for recorded output):
//
//	BenchmarkTableI*          Table I   — step cost model + scaled measured step
//	BenchmarkFig1*            Fig. 1    — tree interaction-list composition
//	BenchmarkFig2*            Fig. 2    — P3M vs TreePM short-range cost
//	BenchmarkFig3*            Fig. 3    — sampling-method decomposition
//	BenchmarkFig5* / Relay*   Fig. 5    — naive vs relay mesh conversion
//	BenchmarkFig6*            Fig. 6    — cosmological step with snapshots
//	BenchmarkKernel*          §II-A     — force-kernel variants (51-op Gflops)
//	BenchmarkNiSweep          §II       — Barnes group-size optimum
//	BenchmarkForceErrorSweep  §III-A    — force accuracy at the operating point
//	BenchmarkPureTreeVs*      §I/§III-B — pure periodic tree vs TreePM lists
//	BenchmarkPencilVsSlabFFT  §IV       — the future-work FFT decomposition
package greem

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"greem/internal/direct"
	"greem/internal/domain"
	"greem/internal/ewald"
	"greem/internal/ewtab"
	"greem/internal/ic"
	"greem/internal/mpi"
	"greem/internal/perfmodel"
	"greem/internal/pfft"
	"greem/internal/pmpar"
	"greem/internal/ppkern"
	"greem/internal/sim"
	"greem/internal/telemetry"
	"greem/internal/tree"
	"greem/internal/treepm"
	"greem/internal/vec"

	gcosmo "greem/internal/cosmo"
)

func uniformSet(seed int64, n int) (x, y, z, m []float64) {
	rng := rand.New(rand.NewSource(seed))
	x = make([]float64, n)
	y = make([]float64, n)
	z = make([]float64, n)
	m = make([]float64, n)
	for i := 0; i < n; i++ {
		x[i], y[i], z[i], m[i] = rng.Float64(), rng.Float64(), rng.Float64(), 1.0/float64(n)
	}
	return
}

func clusteredSet(seed int64, n int) (x, y, z, m []float64) {
	rng := rand.New(rand.NewSource(seed))
	x = make([]float64, n)
	y = make([]float64, n)
	z = make([]float64, n)
	m = make([]float64, n)
	for i := 0; i < n; i++ {
		if i%4 == 0 {
			x[i], y[i], z[i] = rng.Float64(), rng.Float64(), rng.Float64()
		} else {
			p := vec.Wrap(vec.V3{
				X: 0.5 + 0.02*rng.NormFloat64(),
				Y: 0.5 + 0.02*rng.NormFloat64(),
				Z: 0.5 + 0.02*rng.NormFloat64(),
			}, 1)
			x[i], y[i], z[i] = p.X, p.Y, p.Z
		}
		m[i] = 1.0 / float64(n)
	}
	return
}

// --- Table I ---

// BenchmarkTableIModel evaluates the full analytic Table I (both node
// counts) and reports the headline Pflops figures as custom metrics.
func BenchmarkTableIModel(b *testing.B) {
	m := perfmodel.KComputer()
	r := perfmodel.KTableIRates()
	var p24, p82 float64
	for i := 0; i < b.N; i++ {
		c24 := perfmodel.ModelTableI(m, r, 24576, 1.073741824e12, 5.35e15, 4096, [3]int{32, 24, 32}, 4096, 6)
		c82 := perfmodel.ModelTableI(m, r, 82944, 1.073741824e12, 5.30e15, 4096, [3]int{32, 54, 48}, 4096, 18)
		p24, p82 = c24.Pflops(), c82.Pflops()
	}
	b.ReportMetric(p24, "model-Pflops@24576")
	b.ReportMetric(p82, "model-Pflops@82944")
	b.ReportMetric(1.53, "paper-Pflops@24576")
	b.ReportMetric(4.45, "paper-Pflops@82944")
}

// BenchmarkTableIScaledStep times one full distributed step (1 PM + 2 PP +
// 2 DD) of the real code at laptop scale — the measured counterpart whose
// phase breakdown cmd/tableone -run prints.
func BenchmarkTableIScaledStep(b *testing.B) {
	x, y, z, m := uniformSet(1, 8192)
	parts := make([]sim.Particle, len(x))
	for i := range parts {
		parts[i] = sim.Particle{X: x[i], Y: y[i], Z: z[i], M: m[i], ID: int64(i)}
	}
	cfg := sim.Config{
		L: 1, G: 1, NMesh: 32, Theta: 0.5, Ni: 100, Eps2: 1e-8, FastKernel: true,
		Grid: [3]int{2, 2, 2}, DT: 0.005,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := mpi.Run(8, func(c *mpi.Comm) {
			var mine []sim.Particle
			for j := range parts {
				if j%8 == c.Rank() {
					mine = append(mine, parts[j])
				}
			}
			s, err := sim.New(c, cfg, mine)
			if err != nil {
				panic(err)
			}
			if err := s.Step(); err != nil {
				panic(err)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- §II-B ghost exchange: raw particle-ghosts vs the locally-essential tree ---

// benchGhostExchange steps a clustered 64³ system on 8 ranks once per
// iteration and reports the ghost-alltoall traffic (from the labelled mpi
// ledger) plus rank 0's exchange wall-clock, for one exchange mode. The
// before/after pair is the evidence that the LET walk shrinks the PP
// boundary traffic (EXPERIMENTS.md records a harvested run).
func benchGhostExchange(b *testing.B, let bool) {
	const np = 64
	x, y, z, m := clusteredSet(21, np*np*np)
	parts := make([]sim.Particle, len(x))
	for i := range parts {
		parts[i] = sim.Particle{X: x[i], Y: y[i], Z: z[i], M: m[i], ID: int64(i)}
	}
	cfg := sim.Config{
		L: 1, G: 1, NMesh: 64, Theta: 0.5, Ni: 100, Eps2: 1e-8, FastKernel: true,
		Grid: [3]int{2, 2, 2}, DT: 0.005, LETExchange: let, DeterministicCost: true,
	}
	var ghostOps mpi.OpTotals
	var sent, commS, letS float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var tr *mpi.Traffic
		err := mpi.Run(8, func(c *mpi.Comm) {
			rcfg := cfg
			rcfg.Recorder = telemetry.NewRecorder(c.Rank(), nil)
			var mine []sim.Particle
			for j := range parts {
				if j%8 == c.Rank() {
					mine = append(mine, parts[j])
				}
			}
			s, err := sim.New(c, rcfg, mine)
			if err != nil {
				panic(err)
			}
			c.Barrier()
			if c.Rank() == 0 {
				c.Traffic().Reset()
			}
			c.Barrier()
			if err := s.Step(); err != nil {
				panic(err)
			}
			c.Barrier()
			if c.Rank() == 0 {
				tr = c.Traffic()
				t := s.Timers()
				commS, letS = t.PPComm, t.PPLET
				sent = float64(s.GhostStats().Sent)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		ghostOps = tr.TotalsByLabel()[sim.TrafficLabelGhosts]
	}
	b.ReportMetric(float64(ghostOps.Bytes), "ghost-alltoall-B")
	b.ReportMetric(sent, "rank0-sources-sent")
	b.ReportMetric(commS, "rank0-comm-s")
	b.ReportMetric(letS, "rank0-letwalk-s")
}

func BenchmarkGhostExchange64(b *testing.B) {
	b.Run("raw", func(b *testing.B) { benchGhostExchange(b, false) })
	b.Run("let", func(b *testing.B) { benchGhostExchange(b, true) })
}

// --- overlapped step pipeline: sequential vs PM solve hidden behind PP ---

// benchStepOverlap times one warm full step of a clustered 64³ system on 8
// ranks with the overlapped PM‖PP pipeline on or off. The first step warms
// the builder arenas, worker pools and the dup-comm solve goroutine; the
// second step is the steady state the metric reports. rank0-step-s is the
// before/after evidence for the overlap (EXPERIMENTS.md records a harvested
// pair); hidden-s is the PM solve wall-clock that cost no critical path.
func benchStepOverlap(b *testing.B, overlap bool) {
	const np = 64
	x, y, z, m := clusteredSet(21, np*np*np)
	parts := make([]sim.Particle, len(x))
	for i := range parts {
		parts[i] = sim.Particle{X: x[i], Y: y[i], Z: z[i], M: m[i], ID: int64(i)}
	}
	cfg := sim.Config{
		L: 1, G: 1, NMesh: 64, Theta: 0.5, Ni: 100, Eps2: 1e-8,
		FastKernel: true, Float32Kernel: true,
		Grid: [3]int{2, 2, 2}, DT: 0.005, LETExchange: true, DeterministicCost: true,
		OverlapPMPP: overlap,
	}
	var stepS, hiddenS, windowS, pmSolveS float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := mpi.Run(8, func(c *mpi.Comm) {
			var mine []sim.Particle
			for j := range parts {
				if j%8 == c.Rank() {
					mine = append(mine, parts[j])
				}
			}
			s, err := sim.New(c, cfg, mine)
			if err != nil {
				panic(err)
			}
			if err := s.Step(); err != nil { // warm-up step
				panic(err)
			}
			warm := s.OverlapStats()
			c.Barrier()
			t0 := time.Now()
			if err := s.Step(); err != nil {
				panic(err)
			}
			c.Barrier()
			if c.Rank() == 0 {
				stepS = time.Since(t0).Seconds()
				ov := s.OverlapStats()
				hiddenS = ov.HiddenSeconds - warm.HiddenSeconds
				windowS = ov.LastWindowSeconds
				// The hideable share: PM comm+FFT wall-clock per step (the
				// solve the async stage moves off the critical path).
				t := s.Timers()
				pmSolveS = (t.PM.Comm + t.PM.FFT).Seconds() / 2
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(stepS, "rank0-step-s")
	b.ReportMetric(hiddenS, "hidden-s")
	b.ReportMetric(windowS, "window-s")
	b.ReportMetric(pmSolveS, "pm-commfft-s")
}

func BenchmarkStepOverlap64(b *testing.B) {
	b.Run("seq", func(b *testing.B) { benchStepOverlap(b, false) })
	b.Run("overlap", func(b *testing.B) { benchStepOverlap(b, true) })
}

// --- Fig. 1 ---

func BenchmarkFig1TreeInteractions(b *testing.B) {
	x, y, z, m := clusteredSet(2, 20000)
	tr, err := tree.Build(x, y, z, m, tree.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	ax := make([]float64, len(x))
	ay := make([]float64, len(x))
	az := make([]float64, len(x))
	var st tree.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st = tree.Accel(tr, tr, 64, tree.ForceOpts{G: 1, Theta: 0.5, Eps2: 1e-8, FastKernel: true}, ax, ay, az)
	}
	b.ReportMetric(float64(st.ListParticles), "particle-entries")
	b.ReportMetric(float64(st.ListNodes), "multipole-entries")
	b.ReportMetric(st.MeanNj(), "mean-Nj")
}

// --- Fig. 2 ---

func BenchmarkFig2P3MShortRange(b *testing.B) {
	for _, c := range []struct {
		name string
		gen  func(int64, int) ([]float64, []float64, []float64, []float64)
	}{{"uniform", uniformSet}, {"clustered", clusteredSet}} {
		b.Run(c.name, func(b *testing.B) {
			x, y, z, m := c.gen(3, 8000)
			ax := make([]float64, len(x))
			ay := make([]float64, len(x))
			az := make([]float64, len(x))
			var pairs uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pairs = direct.AccelCutoffCells(x, y, z, m, 1, 1, 3.0/16, 1e-8, ax, ay, az)
			}
			b.ReportMetric(float64(pairs), "pairs")
		})
	}
}

func BenchmarkFig2TreePMShortRange(b *testing.B) {
	for _, c := range []struct {
		name string
		gen  func(int64, int) ([]float64, []float64, []float64, []float64)
	}{{"uniform", uniformSet}, {"clustered", clusteredSet}} {
		b.Run(c.name, func(b *testing.B) {
			x, y, z, m := c.gen(3, 8000)
			ax := make([]float64, len(x))
			ay := make([]float64, len(x))
			az := make([]float64, len(x))
			var st tree.Stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr, err := tree.Build(x, y, z, m, tree.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				st = tree.Accel(tr, tr, 100, tree.ForceOpts{
					G: 1, Theta: 0.5, Eps2: 1e-8, Cutoff: true, Rcut: 3.0 / 16, Periodic: true, L: 1, FastKernel: true,
				}, ax, ay, az)
			}
			b.ReportMetric(float64(st.Interactions), "interactions")
		})
	}
}

// --- Fig. 3 ---

func BenchmarkFig3LoadBalance(b *testing.B) {
	x, y, z, _ := clusteredSet(4, 100000)
	pts := make([]vec.V3, len(x))
	for i := range x {
		pts[i] = vec.V3{X: x[i], Y: y[i], Z: z[i]}
	}
	var imb float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		geo, err := domain.FromSamples(8, 8, 1, 1, append([]vec.V3(nil), pts...))
		if err != nil {
			b.Fatal(err)
		}
		imb = domain.Imbalance(domain.CountLoads(geo, pts))
	}
	b.ReportMetric(imb, "imbalance")
	b.ReportMetric(domain.Imbalance(domain.CountLoads(domain.Uniform(8, 8, 1, 1), pts)), "static-imbalance")
}

// --- Fig. 5 / §II-B relay mesh ---

func benchPMCycle(b *testing.B, relay bool, groups int, complexFFT bool) {
	x, y, z, m := uniformSet(5, 4096)
	geo := domain.Uniform(4, 2, 2, 1)
	owner := make([][]int, 16)
	for i := range x {
		r := geo.Find(vec.V3{X: x[i], Y: y[i], Z: z[i]})
		owner[r] = append(owner[r], i)
	}
	cfg := pmpar.Config{N: 32, L: 1, G: 1, Rcut: 3.0 / 32, NFFT: 8, Relay: relay, Groups: groups, ComplexFFT: complexFFT}
	var modeled float64
	var a2aBytes int64
	machine := perfmodel.KComputer()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var ops []mpi.Op
		err := mpi.Run(16, func(c *mpi.Comm) {
			lo, hi := geo.Bounds(c.Rank())
			s, err := pmpar.New(c, cfg, lo, hi)
			if err != nil {
				panic(err)
			}
			c.Traffic().Reset()
			ids := owner[c.Rank()]
			lx := make([]float64, len(ids))
			ly := make([]float64, len(ids))
			lz := make([]float64, len(ids))
			lm := make([]float64, len(ids))
			for k, id := range ids {
				lx[k], ly[k], lz[k], lm[k] = x[id], y[id], z[id], m[id]
			}
			la := make([]float64, len(ids))
			lb := make([]float64, len(ids))
			lc := make([]float64, len(ids))
			s.Accel(lx, ly, lz, lm, la, lb, lc)
			c.Barrier()
			if c.Rank() == 0 {
				ops = c.Traffic().Ops()
				a2aBytes = c.Traffic().TotalsByOp()["Alltoallv"].Bytes
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		modeled, _ = machine.ReplayOps(ops)
	}
	b.ReportMetric(modeled, "modeled-comm-s")
	b.ReportMetric(float64(a2aBytes), "alltoall-B")
}

func BenchmarkFig5RelayVsNaive(b *testing.B) {
	b.Run("naive", func(b *testing.B) { benchPMCycle(b, false, 1, false) })
	b.Run("relay2", func(b *testing.B) { benchPMCycle(b, true, 2, false) })
	// Complex-FFT reference paths: the before side of the r2c before/after
	// (identical conversions, full-spectrum transposes).
	b.Run("naive-complexfft", func(b *testing.B) { benchPMCycle(b, false, 1, true) })
	b.Run("relay2-complexfft", func(b *testing.B) { benchPMCycle(b, true, 2, true) })
}

// BenchmarkRelayPaperScaleModel evaluates the analytic §II-B model at the
// paper's configuration and reports the four timing figures.
func BenchmarkRelayPaperScaleModel(b *testing.B) {
	machine := perfmodel.KComputer()
	var nv, rl perfmodel.ConvTimes
	for i := 0; i < b.N; i++ {
		spec := perfmodel.ConvSpec{P: 12288, Grid: [3]int{16, 32, 24}, N: 4096, NFFT: 4096, Groups: 1}
		nv = machine.MeshConversion(spec)
		spec.Groups = 3
		spec.Interleaved = true
		rl = machine.MeshConversion(spec)
	}
	b.ReportMetric(nv.DensityToSlab, "naive-density-s(paper~10)")
	b.ReportMetric(nv.SlabToLocal, "naive-potential-s(paper~3)")
	b.ReportMetric(rl.DensityToSlab, "relay-density-s(paper~3)")
	b.ReportMetric(rl.SlabToLocal, "relay-potential-s(paper~0.3)")
	b.ReportMetric(nv.Total()/rl.Total(), "speedup(paper>4)")
}

// --- Fig. 6 ---

func BenchmarkFig6CosmologyStep(b *testing.B) {
	l := 1.0
	h0 := gcosmo.HubbleForBox(1, 1, l, 1)
	model := gcosmo.EdS(h0)
	aInit := gcosmo.ScaleFactor(400)
	parts, err := ic.Generate(ic.Config{
		NP: 16, NGrid: 32, L: l, PS: ic.NeutralinoCutoff{N: 0, Amp: 5e-5, KCut: 2 * math.Pi * 4},
		Seed: 6, Model: model, AInit: aInit, TotalMass: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.Config{
		L: l, G: 1, NMesh: 32, Theta: 0.5, Ni: 64, Eps2: 1e-8, FastKernel: true,
		Grid: [3]int{2, 2, 1}, DT: aInit / 4, Stepper: model, Time: aInit,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := mpi.Run(4, func(c *mpi.Comm) {
			var mine []sim.Particle
			for j := range parts {
				if j%4 == c.Rank() {
					mine = append(mine, parts[j])
				}
			}
			s, err := sim.New(c, cfg, mine)
			if err != nil {
				panic(err)
			}
			if err := s.Step(); err != nil {
				panic(err)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- §II-A kernel ---

func BenchmarkKernelGflops(b *testing.B) {
	const ni, nj = 512, 2048
	rng := rand.New(rand.NewSource(7))
	src := &ppkern.Source{}
	for j := 0; j < nj; j++ {
		src.Append(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64())
	}
	xi := make([]float64, ni)
	yi := make([]float64, ni)
	zi := make([]float64, ni)
	ax := make([]float64, ni)
	ay := make([]float64, ni)
	az := make([]float64, ni)
	for i := range xi {
		xi[i], yi[i], zi[i] = rng.Float64(), rng.Float64(), rng.Float64()
	}
	// Float32 mirror of the same particle set (the tree walk emits
	// group-relative float32 coordinates; here the span is O(1) anyway).
	src32 := &ppkern.SourceF32{}
	for j := 0; j < nj; j++ {
		src32.Append(float32(src.X[j]), float32(src.Y[j]), float32(src.Z[j]), float32(src.M[j]))
	}
	xi32 := make([]float32, ni)
	yi32 := make([]float32, ni)
	zi32 := make([]float32, ni)
	for i := range xi {
		xi32[i], yi32[i], zi32[i] = float32(xi[i]), float32(yi[i]), float32(zi[i])
	}
	variants := []struct {
		name string
		f    func() uint64
	}{
		{"scalar", func() uint64 { return ppkern.AccelCutoff(xi, yi, zi, src, 1, 0.4, 1e-10, ax, ay, az) }},
		{"unrolled", func() uint64 { return ppkern.AccelCutoffFast(xi, yi, zi, src, 1, 0.4, 1e-10, ax, ay, az) }},
		{"phantom-rsqrt", func() uint64 { return ppkern.AccelCutoffPhantom(xi, yi, zi, src, 1, 0.4, 1e-10, ax, ay, az) }},
		{"f32-scalar", func() uint64 { return ppkern.AccelCutoffF32(xi32, yi32, zi32, src32, 1, 0.4, 1e-10, ax, ay, az) }},
		{"f32", func() uint64 { return ppkern.AccelCutoffF32Fast(xi32, yi32, zi32, src32, 1, 0.4, 1e-10, ax, ay, az) }},
	}
	// The instrumented variant bounds the telemetry cost on the hot path:
	// one span (two clock reads) plus one flop-counter add per kernel call,
	// exactly what the simulation records around the tree walk. Acceptance:
	// within 2% of the bare unrolled variant.
	rec := telemetry.NewRecorder(0, nil)
	flops := rec.Registry().FlopCounter("bench_flops_total")
	id := rec.PhaseID(telemetry.PhasePPForce)
	variants = append(variants, struct {
		name string
		f    func() uint64
	}{"unrolled+telemetry", func() uint64 {
		sp := rec.StartID(id)
		n := ppkern.AccelCutoffFast(xi, yi, zi, src, 1, 0.4, 1e-10, ax, ay, az)
		sp.End()
		flops.AddUint(n * uint64(ppkern.FlopsPerInteraction))
		return n
	}})
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var inter uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inter += v.f()
			}
			sec := b.Elapsed().Seconds()
			if sec > 0 {
				b.ReportMetric(float64(inter)*float64(ppkern.FlopsPerInteraction)/sec/1e9, "Gflops-51op")
				b.ReportMetric(sec/float64(inter)*1e9, "ns/interaction")
			}
		})
	}
}

// --- ⟨Ni⟩ sweep ---

func BenchmarkNiSweep(b *testing.B) {
	x, y, z, m := clusteredSet(8, 30000)
	tr, err := tree.Build(x, y, z, m, tree.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	ax := make([]float64, len(x))
	ay := make([]float64, len(x))
	az := make([]float64, len(x))
	opt := tree.ForceOpts{G: 1, Theta: 0.5, Eps2: 1e-8, Cutoff: true, Rcut: 0.15, Periodic: true, L: 1, FastKernel: true}
	for _, ni := range []int{1, 8, 32, 100, 500} {
		b.Run(map[bool]string{true: "ni"}[true]+itoa(ni), func(b *testing.B) {
			var st tree.Stats
			for i := 0; i < b.N; i++ {
				st = tree.Accel(tr, tr, ni, opt, ax, ay, az)
			}
			b.ReportMetric(st.MeanNi(), "mean-Ni")
			b.ReportMetric(st.MeanNj(), "mean-Nj")
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// --- §III-A force accuracy ---

func BenchmarkForceErrorSweep(b *testing.B) {
	x, y, z, m := uniformSet(9, 64)
	rx := make([]float64, len(x))
	ry := make([]float64, len(x))
	rz := make([]float64, len(x))
	ewald.New(1, 1).Accel(x, y, z, m, rx, ry, rz)
	for _, nmesh := range []int{8, 16, 32} {
		b.Run("nmesh"+itoa(nmesh), func(b *testing.B) {
			var rms float64
			for i := 0; i < b.N; i++ {
				s, err := treepm.New(treepm.Config{L: 1, G: 1, NMesh: nmesh, Theta: 0.3, Ni: 32})
				if err != nil {
					b.Fatal(err)
				}
				ax := make([]float64, len(x))
				ay := make([]float64, len(x))
				az := make([]float64, len(x))
				if _, err := s.Accel(x, y, z, m, ax, ay, az); err != nil {
					b.Fatal(err)
				}
				var e2, r2 float64
				for j := range ax {
					dx, dy, dz := ax[j]-rx[j], ay[j]-ry[j], az[j]-rz[j]
					e2 += dx*dx + dy*dy + dz*dz
					r2 += rx[j]*rx[j] + ry[j]*ry[j] + rz[j]*rz[j]
				}
				rms = math.Sqrt(e2 / r2)
			}
			b.ReportMetric(rms, "rms-force-err")
		})
	}
}

// --- §I / §III-B: pure periodic tree baseline vs TreePM ---

func BenchmarkPureTreeVsTreePM(b *testing.B) {
	x, y, z, m := clusteredSet(12, 20000)
	tr, err := tree.Build(x, y, z, m, tree.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	tab, err := ewtab.New(1, 16, nil)
	if err != nil {
		b.Fatal(err)
	}
	n := len(x)
	ax := make([]float64, n)
	ay := make([]float64, n)
	az := make([]float64, n)
	b.Run("pure-ewald-tree", func(b *testing.B) {
		var st tree.Stats
		for i := 0; i < b.N; i++ {
			st = tree.AccelPeriodicTree(tr, tr, 100, tree.ForceOpts{G: 1, Theta: 0.5, Eps2: 1e-9, L: 1}, tab, ax, ay, az)
		}
		b.ReportMetric(st.MeanNj(), "mean-Nj")
	})
	b.Run("treepm-short-range", func(b *testing.B) {
		var st tree.Stats
		for i := 0; i < b.N; i++ {
			st = tree.Accel(tr, tr, 100, tree.ForceOpts{
				G: 1, Theta: 0.5, Eps2: 1e-9, Cutoff: true, Rcut: 3.0 / 32, Periodic: true, L: 1, FastKernel: true,
			}, ax, ay, az)
		}
		b.ReportMetric(st.MeanNj(), "mean-Nj")
	})
}

// --- §IV: pencil vs slab FFT scaling ---

func BenchmarkPencilVsSlabFFT(b *testing.B) {
	const n = 32
	// Each subrun reports the all-to-all bytes of one forward+inverse
	// transform pair so the r2c halving of transpose traffic is visible
	// next to the wall-clock numbers.
	var a2aBytes int64
	run := func(b *testing.B, f func()) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f()
		}
		b.ReportMetric(float64(a2aBytes), "alltoall-B")
	}
	grab := func(c *mpi.Comm) {
		if c.Rank() == 0 {
			a2aBytes = c.Traffic().TotalsByOp()["Alltoallv"].Bytes
		}
	}
	b.Run("slab-4ranks", func(b *testing.B) {
		run(b, func() {
			err := mpi.Run(4, func(c *mpi.Comm) {
				plan, err := pfft.NewPlan(c, n)
				if err != nil {
					panic(err)
				}
				local := make([]complex128, plan.LocalSize())
				plan.Forward(local)
				plan.Inverse(local)
				grab(c)
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	})
	b.Run("slab-real-4ranks", func(b *testing.B) {
		run(b, func() {
			err := mpi.Run(4, func(c *mpi.Comm) {
				plan, err := pfft.NewPlan(c, n)
				if err != nil {
					panic(err)
				}
				local := make([]float64, plan.LocalSize())
				spec := make([]complex128, plan.LocalSpecSize())
				plan.ForwardReal(local, spec)
				plan.InverseReal(spec, local)
				grab(c)
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	})
	b.Run("pencil-4x4ranks", func(b *testing.B) {
		run(b, func() {
			err := mpi.Run(16, func(c *mpi.Comm) {
				plan, err := pfft.NewPencilPlan(c, n, 4, 4)
				if err != nil {
					panic(err)
				}
				in := make([]complex128, plan.InSize())
				out := plan.Forward(in)
				plan.Inverse(out)
				grab(c)
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	})
	b.Run("pencil-real-4x4ranks", func(b *testing.B) {
		run(b, func() {
			err := mpi.Run(16, func(c *mpi.Comm) {
				plan, err := pfft.NewPencilPlan(c, n, 4, 4)
				if err != nil {
					panic(err)
				}
				in := make([]float64, plan.InSize())
				out := plan.ForwardReal(in)
				plan.InverseReal(out)
				grab(c)
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	})
}
