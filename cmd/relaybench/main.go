// relaybench reproduces the §II-B communication experiment: the two mesh
// conversions of the parallel PM, naive global Alltoallv versus the relay
// mesh method. It runs the real code at a scaled configuration, replays the
// recorded traffic through the modeled interconnect, sweeps the group count
// (the paper's ablation), and evaluates the analytic model at the paper's
// 4096³/12288-node scale.
//
//	go run ./cmd/relaybench [-ranks 64] [-mesh 32] [-nfft 16]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"greem/internal/domain"
	"greem/internal/mpi"
	"greem/internal/perfmodel"
	"greem/internal/pmpar"
	"greem/internal/vec"
)

func main() {
	ranks := flag.Int("ranks", 64, "ranks (must have a 3-factor grid)")
	nmesh := flag.Int("mesh", 32, "PM mesh per dimension")
	nfft := flag.Int("nfft", 16, "FFT processes")
	flag.Parse()

	grid, err := factorGrid(*ranks)
	if err != nil {
		log.Fatal(err)
	}
	geo := domain.Uniform(grid[0], grid[1], grid[2], 1)
	rng := rand.New(rand.NewSource(1))
	n := 40 * *ranks
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	m := make([]float64, n)
	owner := make([][]int, *ranks)
	for i := range x {
		x[i], y[i], z[i], m[i] = rng.Float64(), rng.Float64(), rng.Float64(), 1.0/float64(n)
		r := geo.Find(vec.V3{X: x[i], Y: y[i], Z: z[i]})
		owner[r] = append(owner[r], i)
	}

	machine := perfmodel.KComputer()
	measure := func(relay bool, groups int) (modeled float64, incast int) {
		cfg := pmpar.Config{N: *nmesh, L: 1, G: 1, Rcut: 3.0 / float64(*nmesh), NFFT: *nfft, Relay: relay, Groups: groups, Interleaved: true}
		var ops []mpi.Op
		err := mpi.Run(*ranks, func(c *mpi.Comm) {
			lo, hi := geo.Bounds(c.Rank())
			s, err := pmpar.New(c, cfg, lo, hi)
			if err != nil {
				panic(err)
			}
			c.Traffic().Reset()
			ids := owner[c.Rank()]
			lx := make([]float64, len(ids))
			ly := make([]float64, len(ids))
			lz := make([]float64, len(ids))
			lm := make([]float64, len(ids))
			for k, id := range ids {
				lx[k], ly[k], lz[k], lm[k] = x[id], y[id], z[id], m[id]
			}
			la := make([]float64, len(ids))
			lb := make([]float64, len(ids))
			lc := make([]float64, len(ids))
			s.Accel(lx, ly, lz, lm, la, lb, lc)
			c.Barrier()
			if c.Rank() == 0 {
				ops = c.Traffic().Ops()
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		var commOps []mpi.Op
		for _, op := range ops {
			if op.Name == "Alltoallv" || op.Name == "Reduce" || op.Name == "Bcast" {
				commOps = append(commOps, op)
			}
		}
		total, _ := machine.ReplayOps(commOps)
		for _, op := range commOps {
			if op.Name != "Alltoallv" {
				continue
			}
			senders := map[int]map[int]bool{}
			for _, msg := range op.Msgs {
				if senders[msg.Dst] == nil {
					senders[msg.Dst] = map[int]bool{}
				}
				senders[msg.Dst][msg.Src] = true
			}
			for _, set := range senders {
				if len(set) > incast {
					incast = len(set)
				}
			}
		}
		return total, incast
	}

	fmt.Printf("Scaled run: %d ranks (%v grid), mesh %d³, %d FFT processes\n", *ranks, grid, *nmesh, *nfft)
	fmt.Printf("%-22s %18s %12s\n", "configuration", "modeled comm time", "max incast")
	naive, incastN := measure(false, 1)
	fmt.Printf("%-22s %15.3e s %12d\n", "naive (world A2A)", naive, incastN)
	for _, g := range []int{1, 2, 4} {
		if *ranks/g < *nfft {
			continue
		}
		t, inc := measure(true, g)
		fmt.Printf("relay, %2d group(s)     %15.3e s %12d\n", g, t, inc)
	}

	fmt.Println("\nAnalytic model at the paper's in-text experiment")
	fmt.Println("(4096³ mesh, 12288 nodes, 4096 FFT processes):")
	spec := perfmodel.ConvSpec{P: 12288, Grid: [3]int{16, 32, 24}, N: 4096, NFFT: 4096, Groups: 1}
	nv := machine.MeshConversion(spec)
	fmt.Printf("  naive:  %.1f s + %.1f s      (paper: ~10 s + ~3 s)\n", nv.DensityToSlab, nv.SlabToLocal)
	for _, g := range []int{2, 3, 6} {
		spec.Groups = g
		spec.Interleaved = true
		rl := machine.MeshConversion(spec)
		note := ""
		if g == 3 {
			note = "  (paper, 3 groups: ~3 s + ~0.3 s; speedup > 4)"
		}
		fmt.Printf("  relay %d groups: %.1f s + %.1f s, speedup %.1f×%s\n",
			g, rl.DensityToSlab, rl.SlabToLocal, nv.Total()/rl.Total(), note)
	}
	fmt.Printf("  FFT itself: %.1f s (paper: ~4 s) — the bottleneck after the optimization\n",
		machine.FFTTime(4096, 4096))
}

func factorGrid(p int) ([3]int, error) {
	best := [3]int{}
	found := false
	for a := 1; a*a*a <= p; a++ {
		if p%a != 0 {
			continue
		}
		q := p / a
		for b := a; b*b <= q; b++ {
			if q%b == 0 {
				best = [3]int{q / b, b, a}
				found = true
			}
		}
	}
	if !found {
		return best, fmt.Errorf("cannot factor %d into a grid", p)
	}
	return best, nil
}
