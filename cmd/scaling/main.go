// scaling projects the Table I performance model across node counts — the
// paper's scalability story ("high performance and excellent scalability is
// achieved even with the simulation on 82944 nodes") plus the §IV pencil-FFT
// upgrade path. The two published columns anchor the model; the rest of the
// curve is the model's prediction of strong scaling for the trillion-particle
// problem.
//
//	go run ./cmd/scaling
package main

import (
	"fmt"

	"greem/internal/perfmodel"
)

func main() {
	m := perfmodel.KComputer()
	r := perfmodel.KTableIRates()
	const (
		nParticles = 1.073741824e12 // 10240³
		nmesh      = 4096
		nfft       = 4096
	)
	// Interactions per step scale (weakly) with clustering, not p; use the
	// paper's ~5.3e15.
	const interactions = 5.3e15

	type cfgT struct {
		nodes  int
		grid   [3]int
		groups int
		note   string
	}
	cfgs := []cfgT{
		{6144, [3]int{16, 16, 24}, 2, ""},
		{12288, [3]int{16, 32, 24}, 3, "the §II-B communication experiment"},
		{24576, [3]int{32, 24, 32}, 6, "published column (1.53 Pflops)"},
		{49152, [3]int{32, 48, 32}, 12, ""},
		{82944, [3]int{32, 54, 48}, 18, "published column (4.45 Pflops); full system"},
	}
	fmt.Println("Strong scaling of the trillion-body step (model; Table I anchors in *):")
	fmt.Printf("%8s %12s %10s %10s %10s %12s  %s\n",
		"nodes", "sec/step", "Pflops", "efficiency", "PP share", "FFT share", "")
	for _, c := range cfgs {
		col := perfmodel.ModelTableI(m, r, c.nodes, nParticles, interactions, nmesh, c.grid, nfft, c.groups)
		star := " "
		if _, ok := perfmodel.PaperTableI(c.nodes); ok {
			star = "*"
		}
		fmt.Printf("%7d%s %12.1f %10.2f %9.1f%% %9.1f%% %11.1f%%  %s\n",
			c.nodes, star, col.Total(), col.Pflops(), 100*col.Efficiency(m),
			100*col.PPTotal()/col.Total(), 100*col.PMFFT/col.Total(), c.note)
	}

	fmt.Println("\nWith the §IV pencil-FFT upgrade (FFT over all nodes instead of 4096):")
	fmt.Printf("%8s %12s %10s %10s\n", "nodes", "sec/step", "Pflops", "efficiency")
	for _, c := range cfgs {
		col := perfmodel.ModelTableI(m, r, c.nodes, nParticles, interactions, nmesh, c.grid, nfft, c.groups)
		up := perfmodel.ProjectPencilUpgrade(m, col, nmesh)
		fmt.Printf("%8d %12.1f %10.2f %9.1f%%\n", c.nodes, up.Total(), up.Pflops(), 100*up.Efficiency(m))
	}
	fmt.Println("\n(The FFT row is constant under slab decomposition — only 4096 processes")
	fmt.Println(" can hold 1-D slabs of a 4096³ mesh — so its share grows with p and caps")
	fmt.Println(" the scaling; the paper names it the current bottleneck and the pencil")
	fmt.Println(" decomposition as the fix, aiming at >5 Pflops.)")
}
