// kernelbench reproduces §II-A's kernel experiment: a pure O(N²) benchmark
// of the particle-particle force loop. It reports the measured throughput of
// each kernel variant (interactions/s and effective Gflops at the paper's
// 51-op count) and the K computer model figures the paper quotes — the
// 12 Gflops/core ceiling implied by the 17 FMA + 17 non-FMA instruction mix
// and the 11.65 Gflops (97%) the tuned loop reaches.
//
//	go run ./cmd/kernelbench [-ni 1024] [-nj 1024] [-reps 20]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"time"

	"greem/internal/perfmodel"
	"greem/internal/ppkern"
)

func main() {
	ni := flag.Int("ni", 1024, "number of i-particles")
	nj := flag.Int("nj", 1024, "number of j-particles")
	reps := flag.Int("reps", 20, "repetitions")
	flag.Parse()

	rng := rand.New(rand.NewSource(1))
	src := &ppkern.Source{}
	for j := 0; j < *nj; j++ {
		src.Append(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64())
	}
	xi := make([]float64, *ni)
	yi := make([]float64, *ni)
	zi := make([]float64, *ni)
	ax := make([]float64, *ni)
	ay := make([]float64, *ni)
	az := make([]float64, *ni)
	for i := range xi {
		xi[i], yi[i], zi[i] = rng.Float64(), rng.Float64(), rng.Float64()
	}
	const rcut, eps2 = 0.4, 1e-10

	bench := func(name string, f func() uint64) {
		// Warm up, then time.
		f()
		start := time.Now()
		var inter uint64
		for r := 0; r < *reps; r++ {
			inter += f()
		}
		el := time.Since(start).Seconds()
		perInter := el / float64(inter)
		gflops := float64(inter) * float64(ppkern.FlopsPerInteraction) / el / 1e9
		fmt.Printf("%-28s %8.2f ns/interaction  %8.2f \"Gflops\" (51 ops/interaction)\n",
			name, perInter*1e9, gflops)
	}

	fmt.Printf("O(N²) kernel benchmark: %d × %d interactions, %d reps\n\n", *ni, *nj, *reps)
	bench("scalar (math.Sqrt)", func() uint64 {
		return ppkern.AccelCutoff(xi, yi, zi, src, 1, rcut, eps2, ax, ay, az)
	})
	bench("unrolled + fast rsqrt", func() uint64 {
		return ppkern.AccelCutoffFast(xi, yi, zi, src, 1, rcut, eps2, ax, ay, az)
	})
	bench("plain Newtonian (no cutoff)", func() uint64 {
		return ppkern.AccelPlain(xi, yi, zi, src, 1, eps2, ax, ay, az)
	})

	// Float32 variants on the same geometry (coordinates are already O(1),
	// the scale the group-relative batches guarantee in the tree walk).
	src32 := &ppkern.SourceF32{}
	for j := 0; j < src.Len(); j++ {
		src32.Append(float32(src.X[j]), float32(src.Y[j]), float32(src.Z[j]), float32(src.M[j]))
	}
	xi32 := make([]float32, *ni)
	yi32 := make([]float32, *ni)
	zi32 := make([]float32, *ni)
	for i := range xi {
		xi32[i], yi32[i], zi32[i] = float32(xi[i]), float32(yi[i]), float32(zi[i])
	}
	bench("float32 scalar", func() uint64 {
		return ppkern.AccelCutoffF32(xi32, yi32, zi32, src32, 1, rcut, eps2, ax, ay, az)
	})
	bench("float32 batched (SIMD)", func() uint64 {
		return ppkern.AccelCutoffF32Fast(xi32, yi32, zi32, src32, 1, rcut, eps2, ax, ay, az)
	})

	m := perfmodel.KComputer()
	fmt.Printf("\nK computer model (SPARC64 VIIIfx, HPC-ACE):\n")
	fmt.Printf("  peak per core:            %5.1f Gflops (4 FMA × 2 × 2.0 GHz)\n", m.PeakCoreFlops()/1e9)
	fmt.Printf("  kernel ceiling:           %5.1f Gflops (17 FMA + 17 non-FMA per 2 interactions ⇒ 75%% of peak)\n",
		m.PeakCoreFlops()*m.KernelCeiling/1e9)
	fmt.Printf("  achieved (paper):         %5.2f Gflops = 97%% of the ceiling\n", m.KernelCoreFlops()/1e9)
	fmt.Printf("  node (8 cores):           %5.1f Gflops peak, %5.1f in the force loop\n",
		m.PeakNodeFlops()/1e9, m.KernelCoreFlops()*8/1e9)
	fmt.Printf("  full system (82944):      %5.1f Pflops peak\n", 82944*m.PeakNodeFlops()/1e15)
}
