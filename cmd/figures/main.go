// figures regenerates the data behind each figure of the paper:
//
//	-fig 1   tree algorithm: particle-particle vs particle-multipole
//	         interaction counts as the opening angle varies
//	-fig 2   P3M vs TreePM: short-range cost on uniform vs clustered
//	         distributions (the O(n²) vs O(n log n) comparison)
//	-fig 3   sampling-method domain decomposition on a clustered field
//	         (also: examples/loadbalance writes the images)
//	-fig 4   the two PM mesh decompositions (local vs slab) for the
//	         6-process layout of the figure
//	-fig 5   the relay mesh method in the figure's exact configuration
//	         (also: examples/relaymesh)
//	-fig 6   scaled cosmological run with projected-density snapshots
//	         (delegates to examples/cosmology for the full run)
//	-fig ni  the ⟨Ni⟩ group-size sweep (optimum ≈100 on K computer)
//	-fig nj  pure periodic tree vs TreePM interaction lists (§I, §III-B)
//
//	go run ./cmd/figures -fig 2
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"time"

	"greem/internal/direct"
	"greem/internal/domain"
	"greem/internal/ewtab"
	"greem/internal/mpi"
	"greem/internal/pmpar"
	"greem/internal/tree"
	"greem/internal/treepm"
	"greem/internal/vec"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate: 1, 2, 3, 4, 5, 6, ni, nj")
	flag.Parse()
	switch *fig {
	case "1":
		fig1()
	case "2":
		fig2()
	case "3":
		fig3()
	case "4":
		fig4()
	case "5":
		fig5()
	case "6":
		fmt.Println("Fig. 6 (density snapshots z = 400 → 31) is produced by the cosmology example:")
		fmt.Println("  go run ./examples/cosmology -np 32 -steps 64 -ranks 8 -out out")
		fmt.Println("which writes density_z*.pgm projections and snap_z*.bin snapshots.")
	case "ni":
		figNi()
	case "nj":
		figNj()
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func clustered(rng *rand.Rand, n int) (x, y, z, m []float64) {
	x = make([]float64, n)
	y = make([]float64, n)
	z = make([]float64, n)
	m = make([]float64, n)
	for i := 0; i < n; i++ {
		if i%4 == 0 {
			x[i], y[i], z[i] = rng.Float64(), rng.Float64(), rng.Float64()
		} else {
			p := vec.Wrap(vec.V3{
				X: 0.5 + 0.02*rng.NormFloat64(),
				Y: 0.5 + 0.02*rng.NormFloat64(),
				Z: 0.5 + 0.02*rng.NormFloat64(),
			}, 1)
			x[i], y[i], z[i] = p.X, p.Y, p.Z
		}
		m[i] = 1.0 / float64(n)
	}
	return
}

func uniform(rng *rand.Rand, n int) (x, y, z, m []float64) {
	x = make([]float64, n)
	y = make([]float64, n)
	z = make([]float64, n)
	m = make([]float64, n)
	for i := 0; i < n; i++ {
		x[i], y[i], z[i], m[i] = rng.Float64(), rng.Float64(), rng.Float64(), 1.0/float64(n)
	}
	return
}

// fig1: the hierarchical tree algorithm — how the multipole acceptance
// replaces particle-particle work as θ grows.
func fig1() {
	rng := rand.New(rand.NewSource(1))
	x, y, z, m := clustered(rng, 20000)
	tr, err := tree.Build(x, y, z, m, tree.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	n := len(x)
	ax := make([]float64, n)
	ay := make([]float64, n)
	az := make([]float64, n)
	fmt.Println("Fig. 1 — tree algorithm: interaction-list composition vs opening angle θ")
	fmt.Printf("%-8s %16s %16s %14s %12s\n", "θ", "particle entries", "multipole entries", "interactions", "⟨Nj⟩")
	for _, theta := range []float64{0.1, 0.3, 0.5, 0.75, 1.0} {
		st := tree.Accel(tr, tr, 64, tree.ForceOpts{G: 1, Theta: theta, Eps2: 1e-8}, ax, ay, az)
		fmt.Printf("%-8.2f %16d %16d %14d %12.0f\n",
			theta, st.ListParticles, st.ListNodes, st.Interactions, st.MeanNj())
	}
	fmt.Printf("\ndirect summation would need %d interactions (N²)\n", n*n)
}

// fig2: P3M vs TreePM — the short-range cost explosion in clustered regions.
func fig2() {
	fmt.Println("Fig. 2 — P3M vs TreePM short-range cost (per force evaluation)")
	fmt.Printf("%-12s %10s %16s %12s %16s %12s\n",
		"distribution", "N", "P3M pairs", "P3M time", "TreePM inter.", "tree time")
	for _, c := range []struct {
		name      string
		clustered bool
		n         int
	}{
		{"uniform", false, 4000}, {"uniform", false, 16000},
		{"clustered", true, 4000}, {"clustered", true, 16000},
	} {
		rng := rand.New(rand.NewSource(2))
		var x, y, z, m []float64
		if c.clustered {
			x, y, z, m = clustered(rng, c.n)
		} else {
			x, y, z, m = uniform(rng, c.n)
		}
		s, err := treepm.New(treepm.Config{L: 1, G: 1, NMesh: 16, Ni: 100, Eps2: 1e-8, FastKernel: true})
		if err != nil {
			log.Fatal(err)
		}
		ax := make([]float64, c.n)
		ay := make([]float64, c.n)
		az := make([]float64, c.n)

		t0 := time.Now()
		pairs := direct.AccelCutoffCells(x, y, z, m, 1, 1, s.Config().Rcut, 1e-8, ax, ay, az)
		p3mTime := time.Since(t0)

		t1 := time.Now()
		st, err := s.Accel(x, y, z, m, ax, ay, az)
		if err != nil {
			log.Fatal(err)
		}
		treeTime := time.Since(t1)
		fmt.Printf("%-12s %10d %16d %12v %16d %12v\n",
			c.name, c.n, pairs, p3mTime.Round(time.Millisecond),
			st.Tree.Interactions, treeTime.Round(time.Millisecond))
	}
	fmt.Println("\n(P3M evaluates every pair inside cutoff spheres directly: a cell 1000×")
	fmt.Println(" overdense costs 10⁶× more; the tree replaces that with O(n log n).)")
}

// fig3: the adaptive decomposition equalizes load on a clustered field.
func fig3() {
	rng := rand.New(rand.NewSource(3))
	x, y, z, _ := clustered(rng, 100000)
	pts := make([]vec.V3, len(x))
	for i := range x {
		pts[i] = vec.V3{X: x[i], Y: y[i], Z: z[i]}
	}
	fmt.Println("Fig. 3 — domain decomposition (8×8 division, 2-D projection)")
	static := domain.Uniform(8, 8, 1, 1)
	adaptive, err := domain.FromSamples(8, 8, 1, 1, append([]vec.V3(nil), pts...))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static uniform:   load imbalance (max/mean) = %.2f\n",
		domain.Imbalance(domain.CountLoads(static, pts)))
	fmt.Printf("sampling method:  load imbalance (max/mean) = %.2f\n",
		domain.Imbalance(domain.CountLoads(adaptive, pts)))
	fmt.Println("x-boundaries of the adaptive decomposition (dense center ⇒ small domains):")
	for i, b := range adaptive.BX {
		fmt.Printf("  BX[%d] = %.4f\n", i, b)
	}
	fmt.Println("(images: go run ./examples/loadbalance)")
}

// fig4: the two domain decompositions of the PM method for six processes.
func fig4() {
	fmt.Println("Fig. 4 — PM mesh layouts for 6 processes, 8³ mesh, 4 FFT processes")
	geo := domain.Uniform(3, 2, 1, 1)
	cfg := pmpar.Config{N: 8, L: 1, G: 1, Rcut: 3.0 / 8, NFFT: 4}
	err := mpi.Run(6, func(c *mpi.Comm) {
		lo, hi := geo.Bounds(c.Rank())
		s, err := pmpar.New(c, cfg, lo, hi)
		if err != nil {
			panic(err)
		}
		lm := s.LocalMesh()
		for r := 0; r < 6; r++ {
			if r == c.Rank() {
				fftNote := ""
				if s.IsFFTProcess() {
					fftNote = fmt.Sprintf("  [FFT process: slab planes of x]")
				}
				fmt.Printf("p%d: domain x∈[%.2f,%.2f) y∈[%.2f,%.2f) — local mesh origin (%d,%d,%d), extent %d×%d×%d%s\n",
					c.Rank(), lo.X, hi.X, lo.Y, hi.Y, lm.X0, lm.Y0, lm.Z0, lm.NX, lm.NY, lm.NZ, fftNote)
			}
			c.Barrier()
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("(upper panel: rectangular local meshes with ghost layers;")
	fmt.Println(" bottom panel: 1-D x-slabs on the FFT processes — see pmpar)")
}

// fig5: the relay mesh method in the figure's configuration.
func fig5() {
	fmt.Println("Fig. 5 — relay mesh method: run `go run ./examples/relaymesh` for the")
	fmt.Println("full 36-process, 4-group execution with traffic analysis; summary here:")
	geo := domain.Uniform(6, 6, 1, 1)
	cfg := pmpar.Config{N: 8, L: 1, G: 1, Rcut: 3.0 / 8, NFFT: 8, Relay: true, Groups: 4}
	err := mpi.Run(36, func(c *mpi.Comm) {
		lo, hi := geo.Bounds(c.Rank())
		s, err := pmpar.New(c, cfg, lo, hi)
		if err != nil {
			panic(err)
		}
		x := []float64{(lo.X + hi.X) / 2}
		y := []float64{(lo.Y + hi.Y) / 2}
		z := []float64{0.5}
		m := []float64{1.0 / 36}
		ax := make([]float64, 1)
		ay := make([]float64, 1)
		az := make([]float64, 1)
		s.Accel(x, y, z, m, ax, ay, az)
		c.Barrier()
		if c.Rank() == 0 {
			fmt.Printf("36 processes in 4 groups of 9; 8 of the root group perform the FFT.\n")
			fmt.Printf("conversion verified: one PM cycle completed, |a₀| = %.3e\n",
				math.Sqrt(ax[0]*ax[0]+ay[0]*ay[0]+az[0]*az[0]))
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}

// figNi: the group-size trade-off of Barnes' modified algorithm.
func figNi() {
	rng := rand.New(rand.NewSource(4))
	x, y, z, m := clustered(rng, 30000)
	tr, err := tree.Build(x, y, z, m, tree.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	n := len(x)
	ax := make([]float64, n)
	ay := make([]float64, n)
	az := make([]float64, n)
	opt := tree.ForceOpts{G: 1, Theta: 0.5, Eps2: 1e-8, Cutoff: true, Rcut: 0.15, Periodic: true, L: 1, FastKernel: true}
	fmt.Println("⟨Ni⟩ sweep — traversal cost falls, kernel cost rises (paper: optimum ≈100 on K)")
	fmt.Printf("%-8s %10s %10s %12s %14s %12s\n", "Ni cap", "⟨Ni⟩", "⟨Nj⟩", "visits", "interactions", "time")
	for _, ni := range []int{1, 8, 32, 100, 500, 2000} {
		t0 := time.Now()
		st := tree.Accel(tr, tr, ni, opt, ax, ay, az)
		el := time.Since(t0)
		fmt.Printf("%-8d %10.1f %10.0f %12d %14d %12v\n",
			ni, st.MeanNi(), st.MeanNj(), st.NodesVisited, st.Interactions, el.Round(time.Millisecond))
	}
}

// figNj: the §I operation-count argument — the pure periodic tree (Ewald-
// corrected, as the pre-TreePM Gordon-Bell codes would run under periodic
// boundaries) vs the TreePM short-range walk, same tree, same θ.
func figNj() {
	rng := rand.New(rand.NewSource(5))
	x, y, z, m := clustered(rng, 30000)
	tr, err := tree.Build(x, y, z, m, tree.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	tab, err := ewtab.New(1, 16, nil)
	if err != nil {
		log.Fatal(err)
	}
	n := len(x)
	ax := make([]float64, n)
	ay := make([]float64, n)
	az := make([]float64, n)
	fmt.Println("Pure periodic tree vs TreePM short-range walk (θ = 0.5, ⟨Ni⟩ cap 100):")
	fmt.Printf("%-28s %10s %14s %12s\n", "method", "⟨Nj⟩", "interactions", "time")
	t0 := time.Now()
	pure := tree.AccelPeriodicTree(tr, tr, 100, tree.ForceOpts{G: 1, Theta: 0.5, Eps2: 1e-9, L: 1}, tab, ax, ay, az)
	fmt.Printf("%-28s %10.0f %14d %12v\n", "pure tree + Ewald table", pure.MeanNj(), pure.Interactions, time.Since(t0).Round(time.Millisecond))
	t1 := time.Now()
	cut := tree.Accel(tr, tr, 100, tree.ForceOpts{G: 1, Theta: 0.5, Eps2: 1e-9, Cutoff: true, Rcut: 3.0 / 32, Periodic: true, L: 1, FastKernel: true}, ax, ay, az)
	fmt.Printf("%-28s %10.0f %14d %12v\n", "TreePM short-range (rcut=3h)", cut.MeanNj(), cut.Interactions, time.Since(t1).Round(time.Millisecond))
	fmt.Printf("\nlist-length ratio %.1f (grows ~log N: ≈6 at the paper's 10¹² particles, §III-B);\n", pure.MeanNj()/cut.MeanNj())
	fmt.Println("the TreePM walk also tolerates a larger θ at equal total accuracy (§I).")
}
