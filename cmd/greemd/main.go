// Command greemd is the simulation service daemon: it runs TreePM
// simulation jobs submitted over HTTP, persists their checkpoints, final
// snapshots and derived products in a content-addressed store, and serves
// progress, products, Prometheus metrics and run-integrity checks.
//
// Quickstart (see README.md for the full tour):
//
//	greemd -addr :8437 -data /var/lib/greemd &
//	curl -X POST localhost:8437/runs -d '{"np":8,"ranks":4,"steps":10,"seed":1,"checkpoint_every":2}'
//	curl localhost:8437/runs/run-000001
//	curl localhost:8437/runs/run-000001/products/pk?nbins=16
//	curl localhost:8437/runs/run-000001/integrity
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"greem/internal/serve"
	"greem/internal/store"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8437", "listen address (host:port; :0 picks a free port)")
		dataDir  = flag.String("data", "", "store directory; empty keeps everything in memory")
		addrFile = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts)")
		queue    = flag.Int("queue", 64, "max queued jobs")
	)
	flag.Parse()
	if err := run(*addr, *dataDir, *addrFile, *queue); err != nil {
		log.Fatalf("greemd: %v", err)
	}
}

func run(addr, dataDir, addrFile string, queue int) error {
	var st store.Store
	if dataDir == "" {
		log.Printf("greemd: no -data directory, using an in-memory store (runs die with the process)")
		st = store.NewMem()
	} else {
		fsStore, err := store.NewFS(dataDir)
		if err != nil {
			return fmt.Errorf("open store at %s: %w", dataDir, err)
		}
		st = fsStore
		log.Printf("greemd: store at %s", dataDir)
	}

	idx := serve.NewMem()
	mgr, err := serve.NewManager(serve.ManagerConfig{
		Store: st, Index: idx, QueueDepth: queue, Logf: log.Printf,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listen on %s: %w", addr, err)
	}
	bound := ln.Addr().String()
	log.Printf("greemd: listening on %s", bound)
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound+"\n"), 0o644); err != nil {
			return fmt.Errorf("write -addr-file: %w", err)
		}
	}

	srv := &http.Server{Handler: serve.NewServer(mgr, idx, st).Handler()}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("greemd: %v, shutting down", s)
	case err := <-done:
		mgr.Close()
		return err
	}

	// Stop taking requests, then stop the job executor (cancelling any
	// running job — its last checkpoint stays in the store).
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("greemd: http shutdown: %v", err)
	}
	mgr.Close()
	log.Printf("greemd: bye")
	return nil
}
