// Command greemd is the simulation service daemon: it runs TreePM
// simulation jobs submitted over HTTP, persists their checkpoints, final
// snapshots and derived products in a content-addressed store, and serves
// progress, products, Prometheus metrics and run-integrity checks.
//
// Durability: with -data set, every job-state transition is journaled in
// the store; a restarted daemon replays the journal, re-queues acknowledged
// jobs and resumes interrupted ones from their newest checkpoint. SIGTERM
// drains gracefully — the running job checkpoints and parks instead of
// dying. Store I/O goes through a retry layer and a circuit breaker;
// /readyz reports drain, queue, breaker and journal state.
//
// Quickstart (see README.md for the full tour):
//
//	greemd -addr :8437 -data /var/lib/greemd &
//	curl -X POST localhost:8437/runs -d '{"np":8,"ranks":4,"steps":10,"seed":1,"checkpoint_every":2}'
//	curl localhost:8437/runs/run-000001
//	curl localhost:8437/runs/run-000001/products/pk?nbins=16
//	curl localhost:8437/runs/run-000001/integrity
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"greem/internal/serve"
	"greem/internal/store"
)

type options struct {
	addr     string
	dataDir  string
	addrFile string
	queue    int

	requestTimeout time.Duration
	drainTimeout   time.Duration

	retryAttempts    int
	breakerThreshold int
	breakerCooldown  time.Duration

	faultEvery   int
	faultSeed    uint64
	faultLatency time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8437", "listen address (host:port; :0 picks a free port)")
	flag.StringVar(&o.dataDir, "data", "", "store directory; empty keeps everything in memory")
	flag.StringVar(&o.addrFile, "addr-file", "", "write the bound address to this file once listening (for scripts)")
	flag.IntVar(&o.queue, "queue", 64, "max queued jobs (admission queue; beyond it submits get 429)")
	flag.DurationVar(&o.requestTimeout, "request-timeout", 30*time.Second, "per-request deadline")
	flag.DurationVar(&o.drainTimeout, "drain-timeout", 30*time.Second, "SIGTERM drain budget: how long the running job may take to checkpoint and park")
	flag.IntVar(&o.retryAttempts, "retry-attempts", 4, "store retry budget per operation")
	flag.IntVar(&o.breakerThreshold, "breaker-threshold", 5, "consecutive store failures that trip the circuit breaker")
	flag.DurationVar(&o.breakerCooldown, "breaker-cooldown", 2*time.Second, "how long the breaker stays open before probing")
	flag.IntVar(&o.faultEvery, "fault-every", 0, "chaos drill: inject a store fault every Nth operation (0 = off)")
	flag.Uint64Var(&o.faultSeed, "fault-seed", 1, "chaos drill: deterministic fault schedule seed")
	flag.DurationVar(&o.faultLatency, "fault-latency", 2*time.Millisecond, "chaos drill: injected latency for latency-kind faults")
	flag.Parse()
	if err := run(o); err != nil {
		log.Fatalf("greemd: %v", err)
	}
}

func run(o options) error {
	var base store.Store
	if o.dataDir == "" {
		log.Printf("greemd: no -data directory, using an in-memory store (runs die with the process)")
		base = store.NewMem()
	} else {
		fsStore, err := store.NewFS(o.dataDir)
		if err != nil {
			return fmt.Errorf("open store at %s: %w", o.dataDir, err)
		}
		base = fsStore
		log.Printf("greemd: store at %s", o.dataDir)
	}

	// The store stack, inside out: fault injection (chaos drills only) →
	// circuit breaker (fail fast when the backend is sick) → retry
	// (mask transient faults; treats an open breaker as definitive).
	var faults *store.FaultPlan
	if o.faultEvery > 0 {
		faults = &store.FaultPlan{Every: o.faultEvery, Seed: o.faultSeed, Latency: o.faultLatency}
		base = store.NewFaulty(base, faults.Hook)
		log.Printf("greemd: CHAOS MODE: injecting a store fault every %d ops (seed %d)", o.faultEvery, o.faultSeed)
	}
	breaker := store.NewBreaker(base, store.BreakerConfig{
		Threshold: o.breakerThreshold, Cooldown: o.breakerCooldown,
	})
	retry := store.NewRetry(breaker, store.RetryConfig{Attempts: o.retryAttempts, Seed: o.faultSeed})
	st := store.Store(retry)

	// The index: durable (journal in the store) when the store is durable.
	var idx serve.Index
	if o.dataDir == "" {
		idx = serve.NewMem()
	} else {
		sx, err := serve.OpenStoreIndex(st, log.Printf)
		if err != nil {
			return fmt.Errorf("open job journal: %w", err)
		}
		idx = sx
	}

	mgr, err := serve.NewManager(serve.ManagerConfig{
		Store: st, Index: idx, QueueDepth: o.queue, Logf: log.Printf,
	})
	if err != nil {
		return err
	}
	if n := mgr.Replayed(); n > 0 {
		log.Printf("greemd: replayed %d unfinished job(s) from the journal", n)
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return fmt.Errorf("listen on %s: %w", o.addr, err)
	}
	bound := ln.Addr().String()
	log.Printf("greemd: listening on %s", bound)
	if o.addrFile != "" {
		if err := os.WriteFile(o.addrFile, []byte(bound+"\n"), 0o644); err != nil {
			return fmt.Errorf("write -addr-file: %w", err)
		}
	}

	handler := serve.NewServer(serve.ServerConfig{
		Manager: mgr, Index: idx, Store: st,
		Retry: retry, Breaker: breaker, Faults: faults,
		RequestTimeout: o.requestTimeout,
	}).Handler()
	srv := &http.Server{
		Handler: handler,
		// A hostile or wedged client must not pin connections forever.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("greemd: %v, draining", s)
	case err := <-done:
		mgr.Close()
		return err
	}

	// Graceful drain, in dependency order: park the running job at a
	// checkpoint (readiness drops immediately, so balancers stop routing),
	// then stop taking HTTP requests, then stop the executor. Unfinished
	// jobs stay non-terminal in the journal; the next daemon resumes them.
	if mgr.Drain(o.drainTimeout) {
		log.Printf("greemd: drained cleanly (unfinished jobs parked for the next start)")
	} else {
		log.Printf("greemd: drain timed out; running job cancelled (still resumable from its last checkpoint)")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("greemd: http shutdown: %v", err)
	}
	mgr.Close()
	log.Printf("greemd: bye")
	return nil
}
