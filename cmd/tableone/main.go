// tableone regenerates the paper's Table I — the per-phase cost breakdown of
// a 10240³-particle step on 24576 and 82944 nodes of K computer — from the
// performance model, printed beside the published values. Optionally it also
// runs a scaled-down distributed simulation and prints the measured phase
// breakdown in the same shape (who dominates, what scales), which is what a
// laptop can verify directly.
//
//	go run ./cmd/tableone [-run] [-np 24] [-ranks 8] [-steps 2]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"greem/internal/mpi"
	"greem/internal/perfmodel"
	"greem/internal/sim"
	"greem/internal/telemetry"
)

func main() {
	doRun := flag.Bool("run", false, "also run a scaled-down measured simulation")
	np := flag.Int("np", 24, "particles per dimension for the scaled run")
	ranks := flag.Int("ranks", 8, "ranks for the scaled run")
	steps := flag.Int("steps", 2, "steps for the scaled run")
	workers := flag.Int("workers", 0, "intra-rank workers for the scaled run (0 = serial, -1 = auto)")
	let := flag.Bool("let", true, "locally-essential-tree ghost exchange for the scaled run (false = raw baseline)")
	f32 := flag.Bool("f32", true, "float32 PP kernel for the scaled run (false = float64 oracle kernel)")
	overlap := flag.Bool("overlap", true, "overlapped PM‖PP step pipeline for the scaled run (false = sequential)")
	insituEvery := flag.Int("insitu-every", 0, "in-situ analysis cadence for the scaled run: FoF + P(k) + projection every k steps (0 = off); the analysis/* phase rows appear when on")
	flag.Parse()

	m := perfmodel.KComputer()
	r := perfmodel.KTableIRates()
	n := 1.073741824e12

	model24 := perfmodel.ModelTableI(m, r, 24576, n, 5.35e15, 4096, [3]int{32, 24, 32}, 4096, 6)
	model82 := perfmodel.ModelTableI(m, r, 82944, n, 5.30e15, 4096, [3]int{32, 54, 48}, 4096, 18)
	paper24, _ := perfmodel.PaperTableI(24576)
	paper82, _ := perfmodel.PaperTableI(82944)

	fmt.Println("TABLE I — calculation cost per step (seconds) and performance statistics")
	fmt.Println("N = 10240³ particles; one step = 1 PM + 2 PP + 2 domain-decomposition cycles")
	fmt.Println()
	fmt.Printf("%-28s %10s %10s | %10s %10s\n", "p (#nodes)", "24576", "24576", "82944", "82944")
	fmt.Printf("%-28s %10s %10s | %10s %10s\n", "", "paper", "model", "paper", "model")
	row := func(name string, f func(perfmodel.TableIColumn) float64) {
		fmt.Printf("%-28s %10.2f %10.2f | %10.2f %10.2f\n",
			name, f(paper24), f(model24), f(paper82), f(model82))
	}
	row("PM (sec/step)", perfmodel.TableIColumn.PMTotal)
	row("  density assignment", func(c perfmodel.TableIColumn) float64 { return c.PMDensity })
	row("  communication", func(c perfmodel.TableIColumn) float64 { return c.PMComm })
	row("  FFT", func(c perfmodel.TableIColumn) float64 { return c.PMFFT })
	row("  acceleration on mesh", func(c perfmodel.TableIColumn) float64 { return c.PMMeshAccel })
	row("  force interpolation", func(c perfmodel.TableIColumn) float64 { return c.PMInterp })
	row("PP (sec/step)", perfmodel.TableIColumn.PPTotal)
	row("  local tree", func(c perfmodel.TableIColumn) float64 { return c.PPLocalTree })
	row("  communication", func(c perfmodel.TableIColumn) float64 { return c.PPComm })
	row("  tree construction", func(c perfmodel.TableIColumn) float64 { return c.PPTreeConstr })
	row("  tree traversal", func(c perfmodel.TableIColumn) float64 { return c.PPTraverse })
	row("  force calculation", func(c perfmodel.TableIColumn) float64 { return c.PPForce })
	row("Domain Decomposition", perfmodel.TableIColumn.DDTotal)
	row("  position update", func(c perfmodel.TableIColumn) float64 { return c.DDPosUpdate })
	row("  sampling method", func(c perfmodel.TableIColumn) float64 { return c.DDSampling })
	row("  particle exchange", func(c perfmodel.TableIColumn) float64 { return c.DDExchange })
	row("Total (sec/step)", perfmodel.TableIColumn.Total)
	fmt.Println()
	fmt.Printf("%-28s %10.2f %10.2f | %10.2f %10.2f\n", "measured performance (Pflops)",
		1.53, model24.Pflops(), 4.45, model82.Pflops())
	fmt.Printf("%-28s %9.1f%% %9.1f%% | %9.1f%% %9.1f%%\n", "efficiency",
		48.7, 100*model24.Efficiency(m), 42.0, 100*model82.Efficiency(m))

	if !*doRun {
		fmt.Println("\n(use -run for a scaled-down measured breakdown on this machine)")
		return
	}
	scaledRun(*np, *ranks, *steps, *workers, *let, *f32, *overlap, *insituEvery)
}

// tableRows maps Table I's row labels onto the telemetry phase names; the
// scaled measured breakdown is rendered from the aggregated cross-rank
// profile under exactly this correspondence.
var tableRows = []struct {
	label string
	phase string
}{
	{"PM density assignment", telemetry.PhasePMDensity},
	{"PM communication", telemetry.PhasePMComm},
	{"PM FFT", telemetry.PhasePMFFT},
	{"PM acceleration on mesh", telemetry.PhasePMMeshForce},
	{"PM force interpolation", telemetry.PhasePMInterp},
	{"PP local tree", telemetry.PhasePPLocalTree},
	{"PP communication", telemetry.PhasePPComm},
	{"PP LET walk", telemetry.PhasePPLET},
	{"PP tree construction", telemetry.PhasePPTreeConstr},
	{"PP tree traversal", telemetry.PhasePPTraverse},
	{"PP force calculation", telemetry.PhasePPForce},
	{"DD position update", telemetry.PhaseDDPosUpdate},
	{"DD sampling method", telemetry.PhaseDDSampling},
	{"DD particle exchange", telemetry.PhaseDDExchange},
}

// scaledRun executes the real distributed code at laptop scale and prints
// the measured phase breakdown in Table I's shape, aggregated across ranks
// (min/mean/max and max/mean imbalance) from the telemetry profile. With
// workers ≠ 0 the intra-rank pool runs, and an imb(intra) column — the
// within-rank max/mean worker imbalance (busy+idle)/busy from the pool
// telemetry — is appended to the phase rows that batch over it; the serial
// default prints exactly the historical table.
func scaledRun(np, ranks, steps, workers int, let, f32, overlap bool, insituEvery int) {
	mode := "LET"
	if !let {
		mode = "raw-ghost"
	}
	kern := "float32"
	if !f32 {
		kern = "float64"
	}
	pipe := "overlapped"
	if !overlap {
		pipe = "sequential"
	}
	fmt.Printf("\nScaled measured run: %d³ particles on %d ranks, %d steps, %s exchange, %s kernel, %s PM‖PP\n",
		np, ranks, steps, mode, kern, pipe)
	rng := rand.New(rand.NewSource(1))
	n := np * np * np
	parts := make([]sim.Particle, n)
	for i := range parts {
		parts[i] = sim.Particle{
			X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64(),
			M: 1.0 / float64(n), ID: int64(i),
		}
	}
	grid := [3]int{2, 2, 2}
	if ranks == 4 {
		grid = [3]int{2, 2, 1}
	} else if ranks == 2 {
		grid = [3]int{2, 1, 1}
	} else if ranks != 8 {
		log.Fatalf("supported rank counts: 2, 4, 8 (got %d)", ranks)
	}
	cfg := sim.Config{
		L: 1, G: 1, NMesh: 32, Theta: 0.5, Ni: 100, Eps2: 1e-8,
		FastKernel: true, Float32Kernel: f32,
		Grid: grid, DT: 0.01, Workers: workers, LETExchange: let,
		OverlapPMPP: overlap,
		InSituEvery: insituEvery, InSituFinalStep: steps,
	}
	var prof *telemetry.Profile
	var inter float64
	var ni, nj float64
	err := mpi.Run(ranks, func(c *mpi.Comm) {
		rcfg := cfg
		rcfg.Recorder = telemetry.NewRecorder(c.Rank(), nil)
		var mine []sim.Particle
		for i := range parts {
			if i%ranks == c.Rank() {
				mine = append(mine, parts[i])
			}
		}
		s, err := sim.New(c, rcfg, mine)
		if err != nil {
			panic(err)
		}
		defer s.Close()
		for i := 0; i < steps; i++ {
			if err := s.Step(); err != nil {
				panic(err)
			}
		}
		inter = s.InteractionsPerStep()
		ni, nj = s.MeanNiNj()
		if p := telemetry.Aggregate(c, s.Recorder()); c.Rank() == 0 {
			prof = p
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	per := 1.0 / float64(steps)
	// The imb(intra) column exists only when the intra-rank pool actually
	// ran (any nonzero pool busy time), so the serial default output is
	// unchanged. (busy+idle)/busy is the max/mean worker imbalance of the
	// pooled loops attributed to each phase.
	intraFor := func(phase string) (string, bool) {
		busy := prof.Counter(telemetry.MetricKey(telemetry.MetricPoolBusySeconds, telemetry.L("phase", phase)))
		idle := prof.Counter(telemetry.MetricKey(telemetry.MetricPoolIdleSeconds, telemetry.L("phase", phase)))
		if busy.Sum <= 0 {
			return "", false
		}
		return fmt.Sprintf("%10.2f", (busy.Sum+idle.Sum)/busy.Sum), true
	}
	intraActive := false
	for _, row := range tableRows {
		if _, ok := intraFor(row.phase); ok {
			intraActive = true
			break
		}
	}
	fmt.Printf("%-28s %10s %10s %10s %10s", "(all ranks, sec/step)", "min", "mean", "max", "max/mean")
	if intraActive {
		fmt.Printf(" %10s", "imb(intra)")
	}
	fmt.Println()
	for _, row := range tableRows {
		fmt.Printf("%-28s %10.4f %10.4f %10.4f %10.2f",
			row.label, prof.Phase(row.phase).Min*per, prof.Phase(row.phase).Mean*per,
			prof.Phase(row.phase).Max*per, prof.Phase(row.phase).Imbalance)
		if intraActive {
			if col, ok := intraFor(row.phase); ok {
				fmt.Print(" " + col)
			} else {
				fmt.Printf(" %10s", "-")
			}
		}
		fmt.Println()
	}
	if overlap {
		// The overlapped pipeline's own rows: join wait is the un-hidden PM
		// remainder on the critical path; the window is the whole overlapped
		// density→{solve ‖ PP}→join section; hidden is the solve time that
		// cost no wall-clock because the tree walk covered it.
		for _, row := range []struct{ label, phase string }{
			{"overlap join wait", telemetry.PhaseOverlapJoin},
			{"overlap window (crit path)", telemetry.PhaseOverlapWindow},
		} {
			fmt.Printf("%-28s %10.4f %10.4f %10.4f %10.2f",
				row.label, prof.Phase(row.phase).Min*per, prof.Phase(row.phase).Mean*per,
				prof.Phase(row.phase).Max*per, prof.Phase(row.phase).Imbalance)
			if intraActive {
				fmt.Printf(" %10s", "-")
			}
			fmt.Println()
		}
		hid := prof.Counter(telemetry.MetricOverlapHidden)
		fmt.Printf("PM solve hidden by overlap: %.4f s/step mean-rank (%.4f max-rank)\n",
			hid.Mean*per, hid.Max*per)
	}
	if insituEvery > 0 {
		for _, row := range []struct{ label, phase string }{
			{"in-situ FoF", telemetry.PhaseAnalysisFoF},
			{"in-situ P(k)", telemetry.PhaseAnalysisPk},
			{"in-situ projection", telemetry.PhaseAnalysisProj},
		} {
			fmt.Printf("%-28s %10.4f %10.4f %10.4f %10.2f",
				row.label, prof.Phase(row.phase).Min*per, prof.Phase(row.phase).Mean*per,
				prof.Phase(row.phase).Max*per, prof.Phase(row.phase).Imbalance)
			if intraActive {
				fmt.Printf(" %10s", "-")
			}
			fmt.Println()
		}
	}
	fmt.Printf("\n⟨Ni⟩ = %.0f, ⟨Nj⟩ = %.0f, interactions/step = %.3g, PP kernel = %s\n", ni, nj, inter, kern)
	flops := prof.Counter(`greem_pp_kernel_flops_total`)
	fmt.Printf("PP kernel flops/step (51-op ledger): %.3g total, %.3g max-rank\n",
		flops.Sum*per, flops.Max*per)
	sent := prof.Counter(telemetry.MetricGhostSent)
	bytes := prof.Counter(telemetry.MetricGhostBytes)
	mono := prof.Counter(telemetry.MetricLETMonopoles)
	leaf := prof.Counter(telemetry.MetricLETLeaves)
	fmt.Printf("ghost exchange/step: %.3g sources (%.1f KiB alltoall), %.3g monopoles, %.3g leaves\n",
		sent.Sum*per, bytes.Sum*per/1024, mono.Sum*per, leaf.Sum*per)
}
