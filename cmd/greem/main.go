// greem is the simulation driver: it generates cosmological initial
// conditions (or loads a snapshot), runs the distributed TreePM integrator
// on in-process ranks, and writes snapshots, projections and a per-phase
// timing report in the shape of the paper's Table I.
//
// With -metrics the per-rank telemetry registries (phase seconds, span
// histograms, interaction/flop counters, MPI traffic) are written in
// Prometheus text format; with -trace every rank's span timeline is written
// as Chrome trace-event JSON, one track per rank, loadable in Perfetto
// (ui.perfetto.dev) or chrome://tracing.
//
// With -checkpoint-every the run is crash-safe: every k steps each rank
// writes a CRC-verified shard and rank 0 commits an atomic, hash-chained
// manifest. Rerunning the same command resumes from the newest valid
// checkpoint (corrupt or partial ones are skipped with a logged reason), and
// an in-process rank failure triggers up to -max-restarts automatic
// restarts from the last checkpoint. With -deterministic the resumed
// trajectory is bit-identical to an uninterrupted run.
//
//	go run ./cmd/greem -np 16 -ranks 8 -steps 16 -zstart 400 -zend 31 -out out
//	go run ./cmd/greem -resume out/snap_0016.bin -steps 8
//	go run ./cmd/greem -np 8 -ranks 4 -steps 2 -trace trace.json -metrics metrics.prom
//	go run ./cmd/greem -np 16 -ranks 4 -steps 8 -deterministic -checkpoint-every 2
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"sync"

	"greem"
	"greem/internal/analysis"
	"greem/internal/checkpoint"
	"greem/internal/cosmo"
	"greem/internal/mpi"
	"greem/internal/sim"
	"greem/internal/telemetry"
)

func main() {
	np := flag.Int("np", 16, "particles per dimension (ICs)")
	ranks := flag.Int("ranks", 8, "ranks")
	steps := flag.Int("steps", 16, "full PM steps")
	zstart := flag.Float64("zstart", 400, "starting redshift")
	zend := flag.Float64("zend", 31, "final redshift")
	seed := flag.Int64("seed", 12345, "IC random seed")
	amp := flag.Float64("amp", 5e-5, "IC power-spectrum amplitude")
	nmesh := flag.Int("nmesh", 0, "PM mesh per dimension (0 = 2·np rounded up)")
	relay := flag.Bool("relay", false, "use the relay mesh method")
	groups := flag.Int("groups", 2, "relay groups")
	pencil := flag.Bool("pencil", false, "use the 2-D pencil FFT decomposition (§IV)")
	py := flag.Int("py", 2, "pencil process grid, y")
	pz := flag.Int("pz", 2, "pencil process grid, z")
	workers := flag.Int("workers", 1, "intra-rank workers: tree traversal, PM pipeline and integrator loops (0/1 = serial, -1 = auto)")
	wmap7 := flag.Bool("wmap7", false, "use the WMAP7 ΛCDM background instead of EdS")
	lpt2 := flag.Bool("2lpt", false, "second-order (2LPT) initial conditions")
	nfft := flag.Int("nfft", 0, "FFT processes (0 = min(ranks, mesh))")
	theta := flag.Float64("theta", 0.5, "tree opening angle")
	let := flag.Bool("let", true, "locally-essential-tree ghost exchange (false = raw particle-ghost baseline)")
	overlap := flag.Bool("overlap", true, "overlapped PM‖PP step pipeline: run the PM solve behind the tree walk (false = sequential)")
	f32 := flag.Bool("f32", true, "float32 PP kernel on group-relative batches (false = float64 oracle kernel)")
	ni := flag.Int("ni", 100, "Barnes group size cap")
	outDir := flag.String("out", "out", "output directory")
	resume := flag.String("resume", "", "resume from a snapshot file or a checkpoint directory")
	snapEvery := flag.Int("snap", 8, "write snapshot every k steps")
	metricsOut := flag.String("metrics", "", "write per-rank metrics (Prometheus text format) to this file")
	traceOut := flag.String("trace", "", "write per-rank span timelines (Chrome trace-event JSON) to this file")
	deterministic := flag.Bool("deterministic", false, "deterministic cost sampling: reruns and checkpoint restarts are bit-identical")
	ckptEvery := flag.Int("checkpoint-every", 0, "write a crash-safe checkpoint every k steps (0 = off)")
	ckptDir := flag.String("checkpoint-dir", "", "checkpoint directory (default <out>/checkpoints)")
	ckptKeep := flag.Int("checkpoint-keep", 3, "checkpoints to retain; oldest pruned first (0 = all)")
	maxRestarts := flag.Int("max-restarts", 2, "automatic in-process restarts from the last checkpoint after a rank failure")
	insituEvery := flag.Int("insitu-every", 0, "run the in-situ analysis pass (distributed FoF catalog, on-the-fly P(k), streaming projection) every k steps and at the final step (0 = off)")
	killAtStep := flag.Int("kill-at-step", 0, "testing: hard-exit the process right after the checkpoint at this step")
	failRankAtStep := flag.Int("fail-rank-at-step", 0, "testing: kill the last rank at the start of this step (once) to exercise graceful degradation")
	flag.Parse()

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	const l, g = 1.0, 1.0
	totalM := 1.0
	var model *cosmo.Model
	if *wmap7 {
		model = cosmo.WMAP7(greem.HubbleForBox(g, totalM, l, 0.272))
	} else {
		model = cosmo.EdS(greem.HubbleForBox(g, totalM, l, 1.0))
	}

	// Resolve the checkpoint plane: -resume pointing at a directory selects
	// it as the checkpoint root; otherwise checkpoints live under -out.
	ckDir := *ckptDir
	resumeFile := ""
	resumeDir := false
	if *resume != "" {
		if st, err := os.Stat(*resume); err == nil && st.IsDir() {
			ckDir = *resume
			resumeDir = true
		} else {
			resumeFile = *resume
		}
	}
	if ckDir == "" {
		ckDir = filepath.Join(*outDir, "checkpoints")
	}
	checkpointing := *ckptEvery > 0 || resumeDir

	aStart := greem.ScaleFactor(*zstart)
	var parts []greem.Particle
	if resumeFile != "" {
		var err error
		var tl float64
		tl, aStart, parts, err = loadSnap(resumeFile)
		if err != nil {
			log.Fatal(err)
		}
		if tl != l {
			log.Fatalf("snapshot box %v does not match %v", tl, l)
		}
		fmt.Printf("resumed %d particles at a = %.5f (z = %.1f)\n", len(parts), aStart, greem.Redshift(aStart))
	}

	mesh := *nmesh
	if mesh == 0 {
		mesh = nextPow2(2 * *np)
	}
	grid, err := factorGrid(*ranks)
	if err != nil {
		log.Fatal(err)
	}
	aEnd := greem.ScaleFactor(*zend)
	cfg := greem.SimConfig{
		L: l, G: g, NMesh: mesh, NFFT: *nfft, Relay: *relay, Groups: *groups,
		Pencil: *pencil, PY: *py, PZ: *pz, Workers: *workers,
		Theta: *theta, Ni: *ni, Eps2: 1e-8, FastKernel: true, Float32Kernel: *f32, LETExchange: *let,
		OverlapPMPP: *overlap,
		Grid:        grid, DT: (aEnd - aStart) / float64(*steps), Stepper: model, Time: aStart,
		DeterministicCost: *deterministic,
	}
	if *insituEvery > 0 {
		cfg.InSituEvery = *insituEvery
		cfg.InSituFinalStep = *steps
	}

	// Skip IC generation when a valid checkpoint will be restored anyway —
	// at production scale the ICs are the second most expensive thing the
	// driver does.
	canResume := false
	if checkpointing {
		if step, ok := checkpoint.LatestStep(checkpoint.Config{Dir: ckDir, Sim: cfg, Logf: log.Printf}, *ranks); ok {
			canResume = true
			fmt.Printf("valid checkpoint at step %d in %s\n", step, ckDir)
		}
	}
	if parts == nil && !canResume {
		ps := greem.NeutralinoCutoff{N: 0, Amp: *amp, KCut: 2 * math.Pi / l * float64(*np) / 4}
		parts, err = greem.GenerateIC(greem.ICConfig{
			NP: *np, NGrid: mesh, L: l, PS: ps, Seed: *seed,
			Model: model, AInit: aStart, TotalMass: totalM, SecondOrder: *lpt2,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("generated %d particles at z = %.0f\n", len(parts), *zstart)
	}

	// The fault-injection hook behind -fail-rank-at-step: kills the last
	// rank at the start of its n-th step, exactly once across restarts.
	var hook greem.KillHook
	if *failRankAtStep > 0 {
		var mu sync.Mutex
		count, fired := 0, false
		target := *ranks - 1
		hook = func(rank int, point string) bool {
			if rank != target || point != "sim/step" {
				return false
			}
			mu.Lock()
			defer mu.Unlock()
			if fired {
				return false
			}
			count++
			if count == *failRankAtStep {
				fired = true
				return true
			}
			return false
		}
	}

	recs := make([]*telemetry.Recorder, *ranks)
	var traffic *mpi.Traffic
	runOnce := func() error {
		return greem.RunWithKillHook(*ranks, hook, func(c *greem.Comm) {
			rec := telemetry.NewRecorder(c.Rank(), nil)
			rec.EnableTrace(*traceOut != "")
			recs[c.Rank()] = rec
			if c.Rank() == 0 {
				traffic = c.Traffic()
			}
			rcfg := cfg
			rcfg.Recorder = rec
			ckCfg := checkpoint.Config{Dir: ckDir, Sim: rcfg, Keep: *ckptKeep, Recorder: rec}
			if c.Rank() == 0 {
				ckCfg.Logf = log.Printf
			}
			var s *sim.Sim
			if checkpointing {
				var rerr error
				s, rerr = checkpoint.Restore(c, ckCfg)
				if rerr != nil && !errors.Is(rerr, checkpoint.ErrNoCheckpoint) {
					panic(rerr)
				}
				if s != nil && c.Rank() == 0 {
					fmt.Printf("resumed from checkpoint at step %d (a = %.5f)\n", s.StepIndex(), s.Time())
				}
			}
			if s == nil {
				var mine []greem.Particle
				for i := range parts {
					if i%*ranks == c.Rank() {
						mine = append(mine, parts[i])
					}
				}
				var err error
				s, err = greem.NewSimulation(c, rcfg, mine)
				if err != nil {
					panic(err)
				}
			}
			for s.StepIndex() < *steps {
				if err := s.Step(); err != nil {
					panic(err)
				}
				idx := s.StepIndex()
				if *ckptEvery > 0 && idx%*ckptEvery == 0 {
					if _, err := checkpoint.Write(c, ckCfg, s); err != nil {
						panic(err)
					}
					if *killAtStep > 0 && idx == *killAtStep {
						// Simulated hard crash (power loss, OOM kill): no
						// cleanup, no manifest beyond what is committed.
						if c.Rank() == 0 {
							fmt.Printf("kill-at-step: exiting hard after checkpoint at step %d\n", idx)
						}
						os.Exit(3)
					}
				}
				if res := s.InSituProducts(); res != nil && res.Step == idx && c.Rank() == 0 {
					writeInSitu(*outDir, res)
				}
				if idx%*snapEvery == 0 || idx == *steps {
					all := s.GatherAll(0)
					if c.Rank() == 0 {
						writeOutputs(*outDir, s, all, l)
					}
				}
				if c.Rank() == 0 {
					fmt.Printf("step %3d: a = %.5f (z = %.1f)\n", idx, s.Time(), greem.Redshift(s.Time()))
				}
			}
			inter := s.InteractionsPerStep()
			ni, nj := s.MeanNiNj()
			c.Barrier()
			if c.Rank() == 0 {
				printTimers(s, *steps, inter, ni, nj)
			}
		})
	}

	// Degradation loop: a lost rank aborts the world; with checkpointing on,
	// restart from the last valid checkpoint instead of dying, a bounded
	// number of times.
	for attempt := 0; ; attempt++ {
		err := runOnce()
		if err == nil {
			break
		}
		if checkpointing && greem.IsAborted(err) && attempt < *maxRestarts {
			log.Printf("world aborted (%v); restarting from last checkpoint (attempt %d/%d)", err, attempt+1, *maxRestarts)
			continue
		}
		log.Fatal(err)
	}
	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, recs, traffic); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote metrics to %s\n", *metricsOut)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := telemetry.WriteChromeTrace(f, recs...); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote Chrome trace to %s (open in ui.perfetto.dev)\n", *traceOut)
	}
}

// writeMetrics exports every rank's registry plus the world-wide MPI traffic
// ledger in Prometheus text format.
func writeMetrics(path string, recs []*telemetry.Recorder, traffic *mpi.Traffic) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WritePrometheusRanks(f, recs); err != nil {
		f.Close()
		return err
	}
	world := telemetry.NewRegistry()
	telemetry.CaptureTraffic(world, traffic)
	if err := telemetry.WritePrometheus(f, world); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeOutputs(dir string, s *sim.Sim, all []greem.Particle, l float64) {
	name := filepath.Join(dir, fmt.Sprintf("snap_%04d.bin", s.StepIndex()))
	if err := greem.SaveSnapshot(name, l, s.Time(), 1, uint64(s.StepIndex()), all); err != nil {
		log.Fatal(err)
	}
	x := make([]float64, len(all))
	y := make([]float64, len(all))
	m := make([]float64, len(all))
	for i, p := range all {
		x[i], y[i], m[i] = p.X, p.Y, p.M
	}
	img := analysis.ProjectXY(x, y, m, 256, l)
	pname := filepath.Join(dir, fmt.Sprintf("density_%04d.pgm", s.StepIndex()))
	f, err := os.Create(pname)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := analysis.WritePGM(f, img); err != nil {
		log.Fatal(err)
	}
}

// writeInSitu writes one in-situ analysis emission (halo catalog, power
// spectrum, streaming surface-density projection) to step-stamped files.
func writeInSitu(dir string, res *sim.InSituResult) {
	write := func(name string, b []byte) {
		if b == nil {
			return
		}
		path := filepath.Join(dir, fmt.Sprintf(name, res.Step))
		if err := os.WriteFile(path, b, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	write("halos_%04d.json", res.Catalog)
	write("pk_%04d.json", res.Power)
	write("insitu_density_%04d.pgm", res.Density)
}

func printTimers(s *sim.Sim, steps int, inter, ni, nj float64) {
	per := 1.0 / float64(steps)
	t := s.Timers()
	fmt.Println("\nper-step phase breakdown (rank 0, Table I shape):")
	fmt.Printf("  PM: density %.4fs, comm %.4fs, FFT %.4fs, mesh accel %.4fs, interp %.4fs\n",
		t.PM.Density.Seconds()*per, t.PM.Comm.Seconds()*per, t.PM.FFT.Seconds()*per,
		t.PM.MeshForce.Seconds()*per, t.PM.Interp.Seconds()*per)
	fmt.Printf("  PP: local %.4fs, LET walk %.4fs, comm %.4fs, construction %.4fs, traversal %.4fs, force %.4fs\n",
		t.PPLocalTree*per, t.PPLET*per, t.PPComm*per, t.PPTreeConstr*per, t.PPTraverse*per, t.PPForce*per)
	gs := s.GhostStats()
	fmt.Printf("  ghosts (rank 0): sent %.0f/step (%.1f KiB), recv %.0f/step, monopoles %.0f, leaves %.0f\n",
		float64(gs.Sent)*per, float64(gs.Bytes)*per/1024, float64(gs.Recv)*per,
		float64(gs.Monopoles)*per, float64(gs.Leaves)*per)
	fmt.Printf("  DD: position %.4fs, sampling %.4fs, exchange %.4fs\n",
		t.DDPosUpdate*per, t.DDSampling*per, t.DDExchange*per)
	if ov := s.OverlapStats(); ov.LastWindowSeconds > 0 {
		fmt.Printf("  overlap: PM solve hidden %.4fs/step, last window critical path %.4fs\n",
			ov.HiddenSeconds*per, ov.LastWindowSeconds)
	}
	fmt.Printf("  interactions/step %.3g, ⟨Ni⟩ = %.0f, ⟨Nj⟩ = %.0f\n", inter, ni, nj)
}

func loadSnap(path string) (l, a float64, parts []greem.Particle, err error) {
	l, a, parts, err = greem.LoadSnapshot(path)
	return
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func factorGrid(p int) ([3]int, error) {
	best := [3]int{}
	found := false
	for a := 1; a*a*a <= p; a++ {
		if p%a != 0 {
			continue
		}
		q := p / a
		for b := a; b*b <= q; b++ {
			if q%b == 0 {
				best = [3]int{q / b, b, a}
				found = true
			}
		}
	}
	if !found {
		return best, fmt.Errorf("cannot factor %d ranks into a grid", p)
	}
	return best, nil
}
