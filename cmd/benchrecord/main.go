// Command benchrecord turns `go test -bench` output into durable, diffable
// performance records.
//
//	go test -run NONE -bench . -benchmem ./... | benchrecord record -dir bench_records
//	benchrecord compare -dir bench_records
//
// record parses benchmark lines from stdin and writes them as
// BENCH_<timestamp>.json. compare diffs the two newest records and exits
// non-zero if any cost metric (ns/op, B/op, allocs/op, or a byte ledger
// like ghost-alltoall-B) regressed by more than the threshold — the
// perf-regression gate for the kernel, solve, exchange and checkpoint
// paths.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Record is one BENCH_<timestamp>.json file.
type Record struct {
	Format  int    `json:"format"`
	Created string `json:"created"` // RFC 3339 UTC
	Tag     string `json:"tag,omitempty"`
	Go      string `json:"go"`
	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped) to its
	// metrics; metric maps unit to value. JSON object keys marshal sorted,
	// so records are byte-reproducible given the same measurements.
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

const recordFormat = 1

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = cmdRecord(os.Args[2:])
	case "compare":
		err = cmdCompare(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchrecord: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: benchrecord record|compare [flags]")
	os.Exit(2)
}

func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	dir := fs.String("dir", "bench_records", "directory for BENCH_*.json files")
	tag := fs.String("tag", "", "free-form label stored in the record")
	fs.Parse(args)

	benches, err := ParseBench(os.Stdin)
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}
	rec := Record{
		Format:     recordFormat,
		Created:    time.Now().UTC().Format(time.RFC3339),
		Tag:        *tag,
		Go:         runtime.Version(),
		Benchmarks: benches,
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	name := filepath.Join(*dir, "BENCH_"+time.Now().UTC().Format("20060102T150405")+".json")
	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(name, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("recorded %d benchmarks to %s\n", len(benches), name)
	return nil
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	dir := fs.String("dir", "bench_records", "directory holding BENCH_*.json files")
	threshold := fs.Float64("threshold", 0.10, "relative regression that fails the gate")
	fs.Parse(args)

	files, err := filepath.Glob(filepath.Join(*dir, "BENCH_*.json"))
	if err != nil {
		return err
	}
	if len(files) < 2 {
		return fmt.Errorf("need at least two records in %s, have %d", *dir, len(files))
	}
	sort.Strings(files) // timestamped names sort chronologically
	oldFile, newFile := files[len(files)-2], files[len(files)-1]
	old, err := loadRecord(oldFile)
	if err != nil {
		return err
	}
	cur, err := loadRecord(newFile)
	if err != nil {
		return err
	}

	fmt.Printf("comparing %s -> %s (threshold %.0f%%)\n",
		filepath.Base(oldFile), filepath.Base(newFile), *threshold*100)
	regressions := Compare(old.Benchmarks, cur.Benchmarks, *threshold, os.Stdout)
	if len(regressions) > 0 {
		fmt.Printf("FAIL: %d metric(s) regressed more than %.0f%%\n", len(regressions), *threshold*100)
		os.Exit(1)
	}
	fmt.Println("PASS: no cost metric regressed beyond the threshold")
	return nil
}

func loadRecord(path string) (Record, error) {
	var r Record
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if r.Format != recordFormat {
		return r, fmt.Errorf("%s: unsupported record format %d", path, r.Format)
	}
	return r, nil
}

// ParseBench extracts benchmark results from `go test -bench` output.
// Lines look like:
//
//	BenchmarkKernelGflops-8   100  11111 ns/op  12.3 Gflops  8 B/op  1 allocs/op
//
// The -GOMAXPROCS suffix is stripped so records taken on different hosts
// stay comparable; everything that is not a benchmark line is ignored.
func ParseBench(r io.Reader) (map[string]map[string]float64, error) {
	out := make(map[string]map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue // not an iteration count — not a result line
		}
		metrics := make(map[string]float64)
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			metrics[fields[i+1]] = v
		}
		if len(metrics) > 0 {
			out[name] = metrics
		}
	}
	return out, sc.Err()
}

// costMetric reports whether a unit measures cost (higher is worse) and so
// participates in the regression gate. Throughput-style metrics (Gflops,
// model rates) are recorded but informational: they swing with the host.
func costMetric(unit string) bool {
	switch unit {
	case "ns/op", "B/op", "allocs/op":
		return true
	}
	return strings.HasSuffix(unit, "-B") // byte ledgers: ghost-alltoall-B, alltoall-B, ...
}

// Regression is one cost metric that got worse beyond the threshold.
type Regression struct {
	Bench, Unit string
	Old, New    float64
}

// Compare diffs cost metrics common to both records, writing a line per
// comparison to w, and returns the regressions beyond threshold.
func Compare(old, cur map[string]map[string]float64, threshold float64, w io.Writer) []Regression {
	var names []string
	for name := range cur {
		if _, ok := old[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	var regressions []Regression
	for _, name := range names {
		var units []string
		for unit := range cur[name] {
			if _, ok := old[name][unit]; ok && costMetric(unit) {
				units = append(units, unit)
			}
		}
		sort.Strings(units)
		for _, unit := range units {
			o, n := old[name][unit], cur[name][unit]
			var rel float64
			if o != 0 {
				rel = (n - o) / o
			} else if n != 0 {
				rel = 1 // appeared from zero: treat as fully regressed
			}
			status := "ok"
			if rel > threshold {
				status = "REGRESSED"
				regressions = append(regressions, Regression{Bench: name, Unit: unit, Old: o, New: n})
			} else if rel < -threshold {
				status = "improved"
			}
			fmt.Fprintf(w, "  %-40s %-18s %14g -> %-14g %+7.1f%%  %s\n",
				name, unit, o, n, rel*100, status)
		}
	}
	return regressions
}
