package main

import (
	"io"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: greem
BenchmarkKernelGflops-8     	     100	     11200 ns/op	        12.50 Gflops	     128 B/op	       2 allocs/op
BenchmarkGhostExchange64-8  	       5	 210000000 ns/op	  51200000 ghost-alltoall-B	      33 rank0-sources-sent
BenchmarkSolve128Real       	      10	  52000000 ns/op	 1048576 B/op	      64 allocs/op
--- this line is noise ---
BenchmarkBroken-8           	notanumber	1 ns/op
PASS
ok  	greem	3.2s
`

func TestParseBench(t *testing.T) {
	got, err := ParseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	k := got["KernelGflops"]
	if k == nil {
		t.Fatal("KernelGflops missing (suffix not stripped?)")
	}
	if k["ns/op"] != 11200 || k["Gflops"] != 12.5 || k["B/op"] != 128 || k["allocs/op"] != 2 {
		t.Fatalf("KernelGflops metrics: %v", k)
	}
	if got["GhostExchange64"]["ghost-alltoall-B"] != 51200000 {
		t.Fatalf("GhostExchange64 metrics: %v", got["GhostExchange64"])
	}
	// A name with no -N suffix parses too.
	if got["Solve128Real"]["ns/op"] != 52000000 {
		t.Fatalf("Solve128Real metrics: %v", got["Solve128Real"])
	}
	if _, ok := got["Broken"]; ok {
		t.Fatal("malformed line was accepted")
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	old := map[string]map[string]float64{
		"Kernel":   {"ns/op": 1000, "B/op": 100, "Gflops": 10},
		"Exchange": {"ns/op": 5000, "ghost-alltoall-B": 4096},
		"OldOnly":  {"ns/op": 1},
	}
	cur := map[string]map[string]float64{
		"Kernel":   {"ns/op": 1050, "B/op": 250, "Gflops": 2}, // B/op regressed 2.5x
		"Exchange": {"ns/op": 4000, "ghost-alltoall-B": 4096},
		"NewOnly":  {"ns/op": 1},
	}
	regs := Compare(old, cur, 0.10, io.Discard)
	if len(regs) != 1 {
		t.Fatalf("regressions: %+v, want exactly the B/op one", regs)
	}
	if regs[0].Bench != "Kernel" || regs[0].Unit != "B/op" {
		t.Fatalf("wrong regression flagged: %+v", regs[0])
	}
	// Gflops collapsing 10 -> 2 must NOT trip the gate: throughput units
	// are informational, only cost units gate.
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	old := map[string]map[string]float64{"K": {"ns/op": 1000, "B/op": 0}}
	cur := map[string]map[string]float64{"K": {"ns/op": 1099, "B/op": 0}}
	if regs := Compare(old, cur, 0.10, io.Discard); len(regs) != 0 {
		t.Fatalf("false positive: %+v", regs)
	}
	// Appearing from zero is a regression.
	cur["K"]["B/op"] = 64
	regs := Compare(old, cur, 0.10, io.Discard)
	if len(regs) != 1 || regs[0].Unit != "B/op" {
		t.Fatalf("zero-to-nonzero not flagged: %+v", regs)
	}
}
