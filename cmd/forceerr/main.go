// forceerr reproduces the §III-A force-accuracy claims: the TreePM total
// force versus exact Ewald summation, sweeping the PM mesh resolution and
// the cutoff radius. The paper chooses N_PM between N/2³ and N/4³ with
// rcut = 3·L/N_PM to minimize this error; the sweep shows the minimum and
// the trade-off on either side.
//
//	go run ./cmd/forceerr [-n 128] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	"greem"
)

func main() {
	n := flag.Int("n", 128, "particles")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	x := make([]float64, *n)
	y := make([]float64, *n)
	z := make([]float64, *n)
	m := make([]float64, *n)
	for i := range x {
		x[i], y[i], z[i], m[i] = rng.Float64(), rng.Float64(), rng.Float64(), 1.0/float64(*n)
	}
	rx := make([]float64, *n)
	ry := make([]float64, *n)
	rz := make([]float64, *n)
	greem.NewEwald(1, 1).Accel(x, y, z, m, rx, ry, rz)

	// errStats returns RMS plus the 50/90/99th percentiles of the per-
	// particle relative error — the error-distribution view the GreeM
	// methods paper plots.
	errStats := func(ax, ay, az []float64) (rms, p50, p90, p99 float64) {
		rel := make([]float64, *n)
		var e2, r2 float64
		for i := range ax {
			dx, dy, dz := ax[i]-rx[i], ay[i]-ry[i], az[i]-rz[i]
			e2 += dx*dx + dy*dy + dz*dz
			r2 += rx[i]*rx[i] + ry[i]*ry[i] + rz[i]*rz[i]
			ref := math.Sqrt(rx[i]*rx[i] + ry[i]*ry[i] + rz[i]*rz[i])
			if ref > 0 {
				rel[i] = math.Sqrt(dx*dx+dy*dy+dz*dz) / ref
			}
		}
		sort.Float64s(rel)
		pick := func(q float64) float64 { return rel[int(q*float64(len(rel)-1))] }
		return math.Sqrt(e2 / r2), pick(0.5), pick(0.9), pick(0.99)
	}

	rms := func(nmesh int, rcutCells float64, spectral bool) float64 {
		s, err := greem.NewTreePM(greem.TreePMConfig{
			L: 1, G: 1, NMesh: nmesh, Rcut: rcutCells / float64(nmesh),
			Theta: 0.3, Ni: 32, SpectralPM: spectral,
		})
		if err != nil {
			log.Fatal(err)
		}
		ax := make([]float64, *n)
		ay := make([]float64, *n)
		az := make([]float64, *n)
		if _, err := s.Accel(x, y, z, m, ax, ay, az); err != nil {
			log.Fatal(err)
		}
		r, _, _, _ := errStats(ax, ay, az)
		return r
	}

	// Error distribution at the operating point.
	{
		s, err := greem.NewTreePM(greem.TreePMConfig{L: 1, G: 1, NMesh: 32, Theta: 0.5, Ni: 100})
		if err != nil {
			log.Fatal(err)
		}
		ax := make([]float64, *n)
		ay := make([]float64, *n)
		az := make([]float64, *n)
		if _, err := s.Accel(x, y, z, m, ax, ay, az); err != nil {
			log.Fatal(err)
		}
		r, p50, p90, p99 := errStats(ax, ay, az)
		fmt.Printf("operating point (N_PM=32, rcut=3 cells, θ=0.5): RMS %.3e, median %.3e, 90%% %.3e, 99%% %.3e\n\n",
			r, p50, p90, p99)
	}

	np := int(math.Cbrt(float64(*n)) + 0.5)
	fmt.Printf("RMS force error of TreePM vs Ewald, %d particles (N^(1/3) ≈ %d)\n\n", *n, np)
	fmt.Println("mesh sweep at the paper's rcut = 3 cells:")
	fmt.Printf("%-10s %-12s %14s %14s\n", "N_PM", "N_PM/N^(1/3)", "RMS (4-pt FD)", "RMS (spectral)")
	for _, nm := range []int{8, 16, 32, 64} {
		fmt.Printf("%-10d %-12.1f %14.4e %14.4e\n",
			nm, float64(nm)/float64(np), rms(nm, 3, false), rms(nm, 3, true))
	}
	fmt.Println("\ncutoff sweep at N_PM = 32 (error rises on both sides of rcut ≈ 3 cells):")
	fmt.Printf("%-16s %14s\n", "rcut (cells)", "RMS (4-pt FD)")
	for _, rc := range []float64{1.5, 2, 3, 4, 6} {
		fmt.Printf("%-16.1f %14.4e\n", rc, rms(32, rc, false))
	}
	fmt.Println("\n(The paper: N_PM between N/2³ and N/4³, rcut = 3/N_PM^(1/3), minimizes")
	fmt.Println(" the force error — the mesh-scale PM error shrinks as rcut/h grows, while")
	fmt.Println(" PP cost grows as rcut³; rcut ≈ 3 cells balances the two.)")
}
