package greem

import (
	"math"
	"path/filepath"
	"testing"
)

// TestPublicAPIEndToEnd drives the whole facade the way the README does:
// generate initial conditions, run a short distributed cosmological
// simulation, snapshot it, reload it, and analyze it.
func TestPublicAPIEndToEnd(t *testing.T) {
	const l, g = 1.0, 1.0
	h0 := HubbleForBox(g, 1.0, l, 1.0)
	model, err := NewCosmology(1, 0, h0)
	if err != nil {
		t.Fatal(err)
	}
	aStart := ScaleFactor(400)
	parts, err := GenerateIC(ICConfig{
		NP: 8, NGrid: 16, L: l,
		PS:    NeutralinoCutoff{N: 0, Amp: 1e-5, KCut: 2 * math.Pi * 2},
		Seed:  1,
		Model: model, AInit: aStart, TotalMass: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 512 {
		t.Fatalf("IC particles = %d", len(parts))
	}

	cfg := SimConfig{
		L: l, G: g, NMesh: 16, Theta: 0.5, Ni: 32, Eps2: 1e-8,
		Grid: [3]int{2, 1, 1}, DT: aStart / 2, Stepper: model, Time: aStart,
	}
	snapPath := filepath.Join(t.TempDir(), "snap.bin")
	err = Run(2, func(c *Comm) {
		var mine []Particle
		for i, p := range parts {
			if i%2 == c.Rank() {
				mine = append(mine, p)
			}
		}
		s, err := NewSimulation(c, cfg, mine)
		if err != nil {
			panic(err)
		}
		for i := 0; i < 2; i++ {
			if err := s.Step(); err != nil {
				panic(err)
			}
		}
		all := s.GatherAll(0)
		if c.Rank() == 0 {
			if err := SaveSnapshot(snapPath, l, s.Time(), g, uint64(s.StepIndex()), all); err != nil {
				panic(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	bl, tm, loaded, err := LoadSnapshot(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if bl != l || len(loaded) != 512 || tm <= aStart {
		t.Fatalf("snapshot: l=%v n=%d t=%v", bl, len(loaded), tm)
	}

	x := make([]float64, len(loaded))
	y := make([]float64, len(loaded))
	z := make([]float64, len(loaded))
	m := make([]float64, len(loaded))
	for i, p := range loaded {
		x[i], y[i], z[i], m[i] = p.X, p.Y, p.Z, p.M
	}
	ks, ps, _, err := MeasurePowerSpectrum(x, y, z, m, 16, l, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) == 0 || len(ps) != len(ks) {
		t.Fatal("power spectrum empty")
	}
	groups := FindHalos(x, y, z, l, 0.03, 4)
	halos := HaloCatalog(x, y, z, m, l, groups)
	mf, counts := HaloMassFunction(halos, 4)
	if len(halos) > 0 && (len(mf) != 4 || counts[0] != len(halos)) {
		t.Errorf("mass function inconsistent: %v %v for %d halos", mf, counts, len(halos))
	}
}

// TestFacadeTreePMAgainstEwald is the README quickstart as a test.
func TestFacadeTreePMAgainstEwald(t *testing.T) {
	solver, err := NewTreePM(TreePMConfig{L: 1, G: 1, NMesh: 16, Theta: 0.3, Ni: 16})
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.2, 0.7, 0.4, 0.9}
	y := []float64{0.1, 0.5, 0.8, 0.3}
	z := []float64{0.6, 0.2, 0.9, 0.5}
	m := []float64{1, 1, 1, 1}
	n := len(x)
	ax := make([]float64, n)
	ay := make([]float64, n)
	az := make([]float64, n)
	if _, err := solver.Accel(x, y, z, m, ax, ay, az); err != nil {
		t.Fatal(err)
	}
	rx := make([]float64, n)
	ry := make([]float64, n)
	rz := make([]float64, n)
	NewEwald(1, 1).Accel(x, y, z, m, rx, ry, rz)
	var e2, r2 float64
	for i := 0; i < n; i++ {
		dx, dy, dz := ax[i]-rx[i], ay[i]-ry[i], az[i]-rz[i]
		e2 += dx*dx + dy*dy + dz*dz
		r2 += rx[i]*rx[i] + ry[i]*ry[i] + rz[i]*rz[i]
	}
	if rms := math.Sqrt(e2 / r2); rms > 0.1 {
		t.Errorf("facade TreePM RMS vs Ewald: %v", rms)
	}
}

// TestKComputerModelHeadline pins the headline machine figures through the
// facade.
func TestKComputerModelHeadline(t *testing.T) {
	m := KComputer()
	if f := m.KernelCoreFlops(); math.Abs(f-11.65e9) > 0.02e9 {
		t.Errorf("kernel rate %v", f)
	}
	if p := 82944 * m.PeakNodeFlops(); math.Abs(p-10.6e15) > 0.2e15 {
		t.Errorf("system peak %v", p)
	}
}
