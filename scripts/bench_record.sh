#!/bin/sh
# Record the canonical performance surface into bench_records/BENCH_<ts>.json:
# the short-range force kernel, the 128³ PM solve, the LET ghost exchange
# (with its all-to-all byte ledger), the overlapped-vs-sequential step
# pipeline, the checkpoint write path and the in-situ analysis plane
# (distributed FoF, P(k) spectrum tap). Compare
# the two newest records afterwards with:
#
#   go run ./cmd/benchrecord compare -dir bench_records
#
# which exits non-zero on a >10% regression in any cost metric.
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-10x}"
OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

echo "== running canonical benchmarks (benchtime $BENCHTIME) =="
go test -run NONE -bench 'KernelGflops$|GhostExchange64$|StepOverlap64$' -benchmem -benchtime "$BENCHTIME" . | tee -a "$OUT"
go test -run NONE -bench 'Solve128Real$' -benchmem -benchtime "$BENCHTIME" ./internal/mesh/ | tee -a "$OUT"
go test -run NONE -bench 'CheckpointWrite$' -benchmem -benchtime "$BENCHTIME" ./internal/checkpoint/ | tee -a "$OUT"
go test -run NONE -bench 'DistFoF64$' -benchmem -benchtime "$BENCHTIME" ./internal/analysis/dist/ | tee -a "$OUT"
go test -run NONE -bench 'InSituPk128$' -benchmem -benchtime "$BENCHTIME" ./internal/analysis/ | tee -a "$OUT"

go run ./cmd/benchrecord record -dir bench_records "$@" < "$OUT"
