#!/bin/sh
# Tier-1 verification gate (see ROADMAP.md): build, vet and test everything,
# then a short -race pass over the concurrency-bearing packages (ranks are
# goroutines: mpi collectives, sim step loop, telemetry recorders).
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test ./...
go test -race -count=1 ./internal/sim/ ./internal/telemetry/ ./internal/mpi/ ./internal/checkpoint/ ./internal/snapshot/ ./internal/fft/ ./internal/pfft/ ./internal/par/ ./internal/mesh/ ./internal/treepm/ ./internal/serve/ ./internal/store/ ./internal/ppkern/ ./internal/tree/ ./internal/pmpar/ ./internal/analysis/ ./internal/analysis/dist/
go test -run NONE -fuzz FuzzDecodeFlat -fuzztime 4s ./internal/domain/
go test -run NONE -fuzz FuzzGhostSelection -fuzztime 4s ./internal/sim/
go test -run NONE -fuzz FuzzUnionFindStitch -fuzztime 4s ./internal/analysis/dist/
./scripts/smoke_chaos.sh
