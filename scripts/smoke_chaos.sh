#!/bin/sh
# Chaos drill for the durable service plane: prove that an acknowledged job
# survives the daemon's violent death and that the recovered result is
# bit-identical to an uninterrupted run.
#
# Phase 0  control: run the job cleanly, record its snapshot content address.
# Phase 1  crash:   run the same job on a fresh store with store-fault
#                   injection on (-fault-every), kill -9 the daemon mid-job,
#                   restart it on the same store, and require the journal to
#                   replay the job and the resumed run to land on the SAME
#                   content address as the control.
# Phase 2  drain:   submit again, SIGTERM mid-job, require a clean
#                   "drained" exit, restart, and require the same address
#                   a third time.
set -eu

cd "$(dirname "$0")/.."

SPEC='{"np":8,"ranks":2,"steps":200,"seed":5,"checkpoint_every":5}'
FAULTS="-fault-every 13 -fault-seed 7"

WORK="$(mktemp -d)"
DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
    [ -n "$DAEMON_PID" ] && wait "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/greemd" ./cmd/greemd

# start_daemon <store-dir> <log-file> [extra flags...]
start_daemon() {
    sd="$1"; lg="$2"; shift 2
    rm -f "$WORK/addr"
    "$WORK/greemd" -addr 127.0.0.1:0 -data "$sd" -addr-file "$WORK/addr" "$@" \
        >> "$lg" 2>&1 &
    DAEMON_PID=$!
    for i in $(seq 1 50); do
        [ -s "$WORK/addr" ] && break
        sleep 0.1
    done
    [ -s "$WORK/addr" ] || { echo "FAIL: daemon never wrote its address" >&2; cat "$lg" >&2; exit 1; }
    ADDR="$(cat "$WORK/addr")"
}

submit() {
    curl -sf -X POST "http://$ADDR/runs" -d "$SPEC" \
        | sed -n 's/.*"id": "\([^"]*\)".*/\1/p'
}

job_field() { # job_field <id> <field> — string or numeric JSON field
    curl -sf "http://$ADDR/runs/$1" | sed -n 's/.*"'"$2"'": "\{0,1\}\([^",}]*\)"\{0,1\}.*/\1/p' | head -1
}

wait_done() { # wait_done <id> — poll until done, print snapshot ref
    for i in $(seq 1 600); do
        st="$(job_field "$1" state)"
        case "$st" in
            done) job_field "$1" snapshot_ref; return 0 ;;
            failed) echo "FAIL: job $1 failed: $(curl -s "http://$ADDR/runs/$1")" >&2; exit 1 ;;
        esac
        sleep 0.1
    done
    echo "FAIL: job $1 stuck in state '$st'" >&2
    exit 1
}

wait_checkpoint() { # wait_checkpoint <id> <min-step> — job must still be live
    for i in $(seq 1 600); do
        st="$(job_field "$1" state)"
        case "$st" in
            done) echo "FAIL: job $1 finished before the drill could interrupt it" >&2; exit 1 ;;
            failed) echo "FAIL: job $1 failed before checkpointing: $(curl -s "http://$ADDR/runs/$1")" >&2; exit 1 ;;
        esac
        ck="$(job_field "$1" last_checkpoint_step)"
        [ -n "$ck" ] && [ "$ck" -ge "$2" ] && return 0
        sleep 0.02
    done
    echo "FAIL: job $1 never reached checkpoint step $2" >&2
    exit 1
}

echo "== phase 0: control run (uninterrupted) =="
start_daemon "$WORK/storeA" "$WORK/control.log"
CONTROL_ID="$(submit)"
[ -n "$CONTROL_ID" ] || { echo "FAIL: control submit returned no id" >&2; exit 1; }
REF_CONTROL="$(wait_done "$CONTROL_ID")"
[ -n "$REF_CONTROL" ] || { echo "FAIL: control run has no snapshot ref" >&2; exit 1; }
kill "$DAEMON_PID"; wait "$DAEMON_PID" 2>/dev/null || true; DAEMON_PID=""
echo "control snapshot $REF_CONTROL"

echo "== phase 1: kill -9 mid-job (store faults injected), restart, resume =="
start_daemon "$WORK/storeB" "$WORK/chaos.log" $FAULTS
CHAOS_ID="$(submit)"
[ -n "$CHAOS_ID" ] || { echo "FAIL: chaos submit returned no id" >&2; exit 1; }
wait_checkpoint "$CHAOS_ID" 10
kill -9 "$DAEMON_PID"; wait "$DAEMON_PID" 2>/dev/null || true; DAEMON_PID=""
echo "killed daemon with job $CHAOS_ID in flight"

start_daemon "$WORK/storeB" "$WORK/chaos.log" $FAULTS
curl -sf "http://$ADDR/metrics" | grep -q '^greem_jobs_replayed_total [1-9]' \
    || { echo "FAIL: restarted daemon replayed no jobs" >&2; cat "$WORK/chaos.log" >&2; exit 1; }
REF_CHAOS="$(wait_done "$CHAOS_ID")"
[ "$REF_CHAOS" = "$REF_CONTROL" ] \
    || { echo "FAIL: resumed snapshot $REF_CHAOS != control $REF_CONTROL" >&2; exit 1; }
curl -sf "http://$ADDR/runs/$CHAOS_ID/integrity" | grep -q '"ok": true' \
    || { echo "FAIL: post-crash integrity check failed" >&2; exit 1; }
echo "resumed to identical snapshot under injected store faults"

echo "== phase 2: SIGTERM drain mid-job, restart, resume =="
DRAIN_ID="$(submit)"
[ -n "$DRAIN_ID" ] || { echo "FAIL: drain-phase submit returned no id" >&2; exit 1; }
wait_checkpoint "$DRAIN_ID" 10
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true; DAEMON_PID=""
grep -q "drained cleanly" "$WORK/chaos.log" \
    || { echo "FAIL: daemon did not drain cleanly on SIGTERM" >&2; tail -20 "$WORK/chaos.log" >&2; exit 1; }

start_daemon "$WORK/storeB" "$WORK/chaos.log" $FAULTS
REF_DRAIN="$(wait_done "$DRAIN_ID")"
[ "$REF_DRAIN" = "$REF_CONTROL" ] \
    || { echo "FAIL: drained-then-resumed snapshot $REF_DRAIN != control $REF_CONTROL" >&2; exit 1; }
kill "$DAEMON_PID"; wait "$DAEMON_PID" 2>/dev/null || true; DAEMON_PID=""

echo "PASS: chaos drill (control=$REF_CONTROL crash=$REF_CHAOS drain=$REF_DRAIN)"
