#!/bin/sh
# Service-plane smoke test: boot the greemd daemon against a filesystem
# store, submit a tiny checkpointed run over HTTP, poll the status endpoint
# until it completes, fetch a product of every kind, and require the
# integrity endpoint to pass. Exercises daemon startup/shutdown, the job
# manager, the content-addressed store on disk, and the product plane.
set -eu

cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
    [ -n "$DAEMON_PID" ] && wait "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/greemd" ./cmd/greemd

echo "== start greemd =="
"$WORK/greemd" -addr 127.0.0.1:0 -data "$WORK/store" -addr-file "$WORK/addr" \
    > "$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!

for i in $(seq 1 50); do
    [ -s "$WORK/addr" ] && break
    sleep 0.1
done
[ -s "$WORK/addr" ] || { echo "FAIL: daemon never wrote its address" >&2; cat "$WORK/daemon.log" >&2; exit 1; }
ADDR="$(cat "$WORK/addr")"
echo "daemon at $ADDR"

curl -sf "http://$ADDR/healthz" > /dev/null

echo "== submit a tiny checkpointed run =="
ID="$(curl -sf -X POST "http://$ADDR/runs" \
    -d '{"np":4,"ranks":2,"steps":3,"seed":1,"checkpoint_every":1}' \
    | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')"
[ -n "$ID" ] || { echo "FAIL: submit returned no job id" >&2; exit 1; }
echo "job $ID"

echo "== poll until done =="
STATE=""
for i in $(seq 1 300); do
    STATE="$(curl -sf "http://$ADDR/runs/$ID" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p')"
    case "$STATE" in
        done) break ;;
        failed) echo "FAIL: job failed" >&2; curl -s "http://$ADDR/runs/$ID" >&2; exit 1 ;;
    esac
    sleep 0.2
done
[ "$STATE" = done ] || { echo "FAIL: job stuck in state '$STATE'" >&2; exit 1; }

echo "== fetch products =="
curl -sf "http://$ADDR/runs/$ID/products/snapshot?lo=0&hi=8" > "$WORK/slice.bin"
[ -s "$WORK/slice.bin" ] || { echo "FAIL: empty snapshot slice" >&2; exit 1; }
curl -sf "http://$ADDR/runs/$ID/products/halos?b=0.2&min_size=2" | grep -q '"format":1' \
    || { echo "FAIL: halo catalog malformed" >&2; exit 1; }
curl -sf "http://$ADDR/runs/$ID/products/pk?nbins=8" | grep -q '"format":1' \
    || { echo "FAIL: power spectrum malformed" >&2; exit 1; }
curl -sf "http://$ADDR/runs/$ID/products/density?n=16" | head -c 2 | grep -q P2 \
    || { echo "FAIL: density image malformed" >&2; exit 1; }

echo "== metrics and integrity =="
curl -sf "http://$ADDR/metrics" | grep -q greemd_http_requests_total \
    || { echo "FAIL: metrics missing server counters" >&2; exit 1; }
curl -sf "http://$ADDR/runs/$ID/integrity" | grep -q '"ok": true' \
    || { echo "FAIL: integrity check did not pass" >&2; exit 1; }

echo "== graceful shutdown =="
kill "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
grep -q "bye" "$WORK/daemon.log" || { echo "FAIL: daemon did not shut down cleanly" >&2; exit 1; }

echo "PASS: serve smoke (job $ID, store $WORK/store)"
