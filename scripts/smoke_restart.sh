#!/bin/sh
# Crash-restart smoke test: run the driver with checkpointing and a
# simulated hard crash (process exit, no cleanup) mid-run, rerun the same
# command so it auto-resumes from the last valid checkpoint, and require the
# final snapshot to be byte-identical to an uninterrupted reference run.
# Exercises the whole plane end to end: shard+manifest commit, scan/validate,
# restore, and -deterministic bit-for-bit resume.
set -eu

cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

go build -o "$WORK/greem" ./cmd/greem

COMMON="-np 8 -ranks 4 -steps 8 -snap 8 -deterministic -checkpoint-every 2"

echo "== reference run (uninterrupted) =="
"$WORK/greem" $COMMON -out "$WORK/ref" -checkpoint-dir "$WORK/ref-ck" > "$WORK/ref.log" 2>&1

echo "== interrupted run (hard crash after the step-4 checkpoint) =="
if "$WORK/greem" $COMMON -out "$WORK/ck" -kill-at-step 4 > "$WORK/crash.log" 2>&1; then
    echo "FAIL: kill-at-step run did not crash" >&2
    exit 1
fi

echo "== rerun the same command: must auto-resume from the checkpoint =="
"$WORK/greem" $COMMON -out "$WORK/ck" > "$WORK/resume.log" 2>&1
grep -q "resumed from checkpoint at step 4" "$WORK/resume.log" || {
    echo "FAIL: resume did not pick up the step-4 checkpoint" >&2
    cat "$WORK/resume.log" >&2
    exit 1
}

cmp "$WORK/ref/snap_0008.bin" "$WORK/ck/snap_0008.bin" || {
    echo "FAIL: resumed run diverged from the uninterrupted reference" >&2
    exit 1
}
echo "OK: crash + resume is byte-identical to the uninterrupted run"
